// Package lockapi defines the execution interface shared by every lock
// implementation in this repository.
//
// Lock algorithms are written once against the Proc ("processor handle")
// interface and run unmodified on three backends:
//
//   - the native backend (this package), mapping operations to sync/atomic
//     for real goroutine-level use and testing.B benchmarks;
//   - the memsim backend (internal/memsim), a deterministic discrete-event
//     simulator of a multi-level NUMA machine with a cache-coherence cost
//     model;
//   - the mcheck backend (internal/mcheck), an exhaustive-interleaving model
//     checker that honors the per-operation memory-order annotations.
//
// All shared mutable state lives in 64-bit Cells. Structures that would be
// pointer-linked in C (MCS queue nodes, CLH nodes) are represented as integer
// handles into per-lock node tables so that every atomic word is a plain
// uint64 on every backend.
package lockapi

import (
	"runtime"
	"sync/atomic"
)

// Order is a memory-order annotation in the style of C11/VSync atomics.
//
// The native backend ignores Order: Go's sync/atomic operations are
// sequentially consistent, which is stronger than any annotation here (this
// mirrors running an over-fenced lock on real hardware — always correct,
// possibly slower). The mcheck backend interprets Order: in its TSO mode a
// Relaxed store may be delayed in a store buffer past subsequent operations,
// so a lock that wrongly relaxes a needed barrier fails verification.
type Order uint8

const (
	// Relaxed imposes no ordering beyond atomicity.
	Relaxed Order = iota
	// Acquire orders the operation before all subsequent accesses.
	Acquire
	// Release orders the operation after all preceding accesses.
	Release
	// AcqRel combines Acquire and Release (for read-modify-writes).
	AcqRel
	// SeqCst is sequentially consistent and acts as a full fence.
	SeqCst
)

// String returns the conventional short name of the order.
func (o Order) String() string {
	switch o {
	case Relaxed:
		return "rlx"
	case Acquire:
		return "acq"
	case Release:
		return "rel"
	case AcqRel:
		return "acq_rel"
	case SeqCst:
		return "seq_cst"
	}
	return "order(?)"
}

// Cell is a 64-bit shared atomic slot. The zero value is a Cell holding 0.
//
// Backends that need per-cell metadata (the simulator's cache-line state,
// the model checker's variable identity) key it off the Cell's address, so a
// Cell must not be copied after first use.
//
// By default every Cell occupies its own simulated cache line. Colocate
// groups cells onto one line, mirroring how a C implementation lays out
// struct fields — essential for cost fidelity: a Ticketlock's two counters
// share a line (so arrivals disturb grant spinners), an MCS node's next and
// locked words share a line, and CLoF's per-level metadata words share a
// line (so one transfer serves the waiters counter, the pass flag, and the
// keep_local counter together).
type Cell struct {
	_ noCopy
	v atomic.Uint64
	// line, when non-nil, is the shared cache-line token for colocated
	// cells (set by Colocate during single-threaded setup).
	line *LineTag
}

// LineTag identifies a simulated cache line shared by colocated cells.
type LineTag struct{ _ byte }

// Raw returns the underlying atomic word. It is intended for backends and
// tests; lock algorithms must go through a Proc.
func (c *Cell) Raw() *atomic.Uint64 { return &c.v }

// Init sets the cell's value during single-threaded setup.
func (c *Cell) Init(v uint64) { c.v.Store(v) }

// LineKey returns the identity backends should key cache-line state on:
// the shared tag for colocated cells, the cell itself otherwise.
func (c *Cell) LineKey() any {
	if c.line != nil {
		return c.line
	}
	return c
}

// Colocate places the given cells on one simulated cache line (struct-field
// layout). Only safe during single-threaded setup, before any Proc touches
// the cells. Cells already colocated join the first cell's line.
func Colocate(cells ...*Cell) {
	if len(cells) == 0 {
		return
	}
	tag := cells[0].line
	if tag == nil {
		tag = &LineTag{}
	}
	for _, c := range cells {
		c.line = tag
	}
}

// noCopy triggers `go vet -copylocks` when a containing struct is copied.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Proc is a handle to the executing processor/thread. Every memory operation
// a lock performs goes through a Proc so that the same algorithm can run on
// native atomics, on the NUMA simulator, or inside the model checker.
//
// A Proc is owned by a single thread of execution and must not be shared.
type Proc interface {
	// Load atomically reads the cell.
	Load(c *Cell, o Order) uint64
	// Store atomically writes the cell.
	Store(c *Cell, v uint64, o Order)
	// CAS atomically compares-and-swaps the cell and reports success.
	CAS(c *Cell, old, new uint64, o Order) bool
	// Add atomically adds delta and returns the NEW value.
	Add(c *Cell, delta uint64, o Order) uint64
	// Swap atomically exchanges the cell's value and returns the OLD value.
	Swap(c *Cell, v uint64, o Order) uint64
	// Fence issues a standalone memory fence.
	Fence(o Order)
	// Spin hints that the caller is waiting for ANOTHER THREAD to change
	// the last-observed location. Backends use it to back off (native),
	// park until the watched line changes (memsim), or collapse the loop
	// into an await (mcheck). Consequently, pure CAS-retry loops — where a
	// failed CAS itself proves the location just changed — must NOT call
	// Spin, or those backends will block on a change that may never come.
	Spin()
	// ID returns the processor/thread identifier (a virtual CPU number on
	// the simulator, a worker index natively).
	ID() int
}

// Ctx is an opaque per-thread, per-lock context ("queue node" state). Locks
// that spin locally enqueue their Ctx; locks without a context return nil
// from NewCtx and ignore the argument.
type Ctx any

// Lock is the uniform spinlock interface (the paper's acquire/release
// interface after context abstraction, §4.1.3): context-free locks simply
// ignore the Ctx argument.
//
// CLoF requires the context invariant: a Ctx must never be used in two
// concurrent acquire/release operations. Most locks additionally require
// thread-obliviousness only in the sense that Release may run on a different
// thread than Acquire provided it uses the same Ctx.
type Lock interface {
	// NewCtx allocates a fresh context for this lock, or returns nil if the
	// lock needs none. NewCtx is only safe during single-threaded setup.
	NewCtx() Ctx
	// Acquire blocks until the lock is held by the caller.
	Acquire(p Proc, c Ctx)
	// Release releases the lock. It must be called with the same Ctx that
	// acquired it (possibly from a different thread).
	Release(p Proc, c Ctx)
}

// WaiterDetector is implemented by locks that can cheaply detect waiters
// (paper §4.1.2: MCS checks its next pointer, Ticketlock compares ticket and
// grant). CLoF uses it as the custom has_waiters and then drops its own
// inc_waiters/dec_waiters counter.
type WaiterDetector interface {
	// HasWaiters reports whether some other thread is currently waiting to
	// acquire the lock. It may only be called by the lock owner, with the
	// Ctx that holds the lock.
	HasWaiters(p Proc, c Ctx) bool
}

// WaiterInfo is the WaiterDetector analogue of TryInfo: implemented by
// wrappers whose HasWaiters delegates to an inner lock that may not detect
// waiters at all. Callers consult DetectsWaiters rather than type-asserting
// WaiterDetector directly, exactly as SupportsTry guards TryLocker.
type WaiterInfo interface {
	WaitersDetectable() bool
}

// DetectsWaiters reports whether HasWaiters is actually usable on l: the
// WaiterInfo answer when the lock provides one, the presence of
// WaiterDetector otherwise.
func DetectsWaiters(l Lock) bool {
	if wi, ok := l.(WaiterInfo); ok {
		return wi.WaitersDetectable()
	}
	_, ok := l.(WaiterDetector)
	return ok
}

// FairnessInfo is implemented by locks that declare whether they guarantee
// starvation freedom. CLoF compositions are fair iff all components are fair
// (paper Theorem 4.1).
type FairnessInfo interface {
	Fair() bool
}

// Fair reports whether l declares itself starvation-free. Locks that do not
// implement FairnessInfo are conservatively treated as unfair.
func Fair(l Lock) bool {
	f, ok := l.(FairnessInfo)
	return ok && f.Fair()
}

// NativeProc is the native backend: operations map directly to sync/atomic
// (sequentially consistent, hence correct for any Order annotation) and Spin
// yields to the Go scheduler periodically so that spinning goroutines do not
// starve the runtime when threads outnumber GOMAXPROCS.
type NativeProc struct {
	id    int
	spins uint32
}

// NewNativeProc returns a native processor handle with the given worker id.
func NewNativeProc(id int) *NativeProc { return &NativeProc{id: id} }

// Load implements Proc.
func (p *NativeProc) Load(c *Cell, _ Order) uint64 { return c.v.Load() }

// Store implements Proc.
func (p *NativeProc) Store(c *Cell, v uint64, _ Order) { c.v.Store(v) }

// CAS implements Proc.
func (p *NativeProc) CAS(c *Cell, old, new uint64, _ Order) bool {
	return c.v.CompareAndSwap(old, new)
}

// Add implements Proc.
func (p *NativeProc) Add(c *Cell, delta uint64, _ Order) uint64 {
	return c.v.Add(delta)
}

// Swap implements Proc.
func (p *NativeProc) Swap(c *Cell, v uint64, _ Order) uint64 {
	return c.v.Swap(v)
}

// Fence implements Proc. Go offers no standalone fence; a SeqCst RMW on a
// private cell has the same ordering effect and native code never relies on
// weaker-than-SC behavior anyway, so this is a no-op.
func (p *NativeProc) Fence(_ Order) {}

// Spin implements Proc: busy-iterate briefly, then yield to the scheduler.
// Without the yield, spinning goroutines pin their Ps and deadlock workloads
// where waiters outnumber GOMAXPROCS.
func (p *NativeProc) Spin() {
	p.spins++
	if p.spins%16 == 0 {
		runtime.Gosched()
	}
}

// ID implements Proc.
func (p *NativeProc) ID() int { return p.id }

var _ Proc = (*NativeProc)(nil)
