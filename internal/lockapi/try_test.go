package lockapi

import "testing"

// spinCount runs fn against a native Proc and returns how many Spins it
// issued, cross-checking the count Pause reports.
func spinCount(t *testing.T, bo *ExpBackoff) int {
	t.Helper()
	p := NewNativeProc(0)
	n := bo.Pause(p)
	if n < 1 {
		t.Fatalf("Pause reported %d spins, want >= 1", n)
	}
	return n
}

// TestExpBackoffJitterBounds: with a seed set, every pause stays within
// [ceil(n/2), n] of the un-jittered schedule and never exceeds Cap.
func TestExpBackoffJitterBounds(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xDEADBEEF} {
		exact := &ExpBackoff{Base: 2, Cap: 96}
		jit := &ExpBackoff{Base: 2, Cap: 96, Seed: seed}
		for i := 0; i < 12; i++ {
			want := spinCount(t, exact)
			got := spinCount(t, jit)
			lo := (want + 1) / 2
			if got < lo || got > want {
				t.Fatalf("seed %#x pause %d: jittered %d spins, want in [%d, %d]", seed, i, got, lo, want)
			}
			if got > 96 {
				t.Fatalf("seed %#x pause %d: %d spins exceeds Cap", seed, i, got)
			}
		}
	}
}

// TestExpBackoffJitterDeterministic: equal seeds reproduce the exact same
// spin sequence; distinct seeds diverge. Both halves of the contract matter:
// the first keeps simulator runs byte-identical, the second breaks convoys.
func TestExpBackoffJitterDeterministic(t *testing.T) {
	seq := func(seed uint64) []int {
		bo := &ExpBackoff{Base: 1, Cap: 512, Seed: seed}
		out := make([]int, 16)
		for i := range out {
			out[i] = spinCount(t, bo)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pause %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 7 and 8 produced identical 16-pause sequences %v", a)
	}
}

// TestExpBackoffJitterSchedulePreserved: jitter must not feed back into the
// doubling envelope — after any number of jittered pauses the next
// un-jittered count matches the exact schedule.
func TestExpBackoffJitterSchedulePreserved(t *testing.T) {
	exact := &ExpBackoff{Base: 3, Cap: 1 << 20}
	jit := &ExpBackoff{Base: 3, Cap: 1 << 20, Seed: 99}
	for i := 0; i < 10; i++ {
		want := spinCount(t, exact)
		spinCount(t, jit)
		jit.Seed = 0 // peek at the envelope without consuming jitter
		exactNext := exact.cur
		if jit.cur != exactNext {
			t.Fatalf("pause %d: jittered envelope %d, exact envelope %d (want equal)", i, jit.cur, exactNext)
		}
		jit.Seed = 99
		_ = want
	}
}

// TestExpBackoffZeroSeedExact: Seed==0 keeps the historical exact doubling
// sequence (1, 2, 4, ... clamped at Cap).
func TestExpBackoffZeroSeedExact(t *testing.T) {
	bo := &ExpBackoff{Cap: 16}
	want := []int{1, 2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := spinCount(t, bo); got != w {
			t.Fatalf("pause %d: %d spins, want %d", i, got, w)
		}
	}
}
