package lockapi

// This file holds the trivial capability surface shared by the key-value
// stores (internal/kvstore, internal/kyoto, internal/store): the no-op
// default lock for single-threaded use and the shared-acquisition (reader)
// capability interface the sharded store's read paths consult.

// Noop is the no-op Lock: every operation returns immediately and nothing
// is excluded. It is the documented default wherever a component accepts an
// optional lock (kvstore.Options.Lock, kyoto.Options.Lock) and the inner
// lock of sharded-store backends whose real lock is held by the router.
// The zero value is ready for use; NoopLock is the shared instance.
type Noop struct{}

// NewCtx implements Lock (no context needed).
func (Noop) NewCtx() Ctx { return nil }

// Acquire implements Lock as a no-op.
func (Noop) Acquire(p Proc, _ Ctx) {}

// Release implements Lock as a no-op.
func (Noop) Release(p Proc, _ Ctx) {}

// NoopLock is the canonical Noop instance (stateless, safe to share).
var NoopLock Lock = Noop{}

// RWLocker is implemented by locks that additionally support shared (read)
// acquisitions: any number of AcquireShared holders may overlap, but they
// exclude — and are excluded by — the exclusive Acquire/Release path. The
// sharded store (internal/store) routes read-only operations through this
// capability when the configured shard lock provides it, and degrades to the
// exclusive path otherwise.
//
// The Ctx passed to the shared path is the same per-thread context returned
// by NewCtx; implementations that need no reader state ignore it.
type RWLocker interface {
	Lock
	// AcquireShared blocks until the lock is held in shared mode.
	AcquireShared(p Proc, c Ctx)
	// ReleaseShared releases a shared acquisition.
	ReleaseShared(p Proc, c Ctx)
}

var _ Lock = Noop{}
