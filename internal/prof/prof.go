// Package prof wires runtime/pprof CPU and heap profiling into the
// command-line tools (clof-figures, clof-bench). See EXPERIMENTS.md
// "Profiling the simulator" for the workflow.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU and/or heap profiling per the (possibly empty) output
// paths and returns a stop function to run before exit. An empty path
// disables that profile; Start never fails silently — unusable paths are
// reported as errors.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
