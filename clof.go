// Package clof is CLoF-Go: a Go implementation of the Compositional Lock
// Framework for multi-level NUMA systems (Chehab et al., SOSP 2021), with
// the complete substrate needed to reproduce the paper's evaluation — a
// deterministic NUMA machine simulator, the basic spinlocks, the HMCS, CNA,
// ShflLock and lock-cohorting baselines, a small model checker, and the
// benchmark workloads.
//
// This package is the stable public facade; the implementation lives under
// internal/. The paper's workflow (its Fig. 5) maps to:
//
//	h, _   := clof.DetectHierarchy(clof.Armv8Server(), 0, 0)     // §3.1
//	comps  := clof.Generate(clof.BasicLocks(clof.ArmV8), h.Depth())
//	...run the scripted benchmark (see cmd/clof-bench)...         // §4.3
//	lock   := clof.MustNewLock(h, "tkt-clh-tkt-tkt")               // §4.1
//
// Locks are used through per-thread contexts; a Proc identifies the
// executing CPU (see examples/quickstart):
//
//	ctx := lock.NewCtx()               // one per worker, at setup
//	p   := clof.NewNativeProc(cpu)     // worker's processor handle
//	lock.Acquire(p, ctx)
//	... critical section ...
//	lock.Release(p, ctx)
package clof

import (
	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/cna"
	"github.com/clof-go/clof/internal/cohort"
	"github.com/clof-go/clof/internal/discover"
	"github.com/clof-go/clof/internal/hmcs"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/mcheck"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/shfllock"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// Core lock-interface types (see internal/lockapi).
type (
	// Lock is the uniform spinlock interface every lock here implements.
	Lock = lockapi.Lock
	// Proc is the per-thread processor handle locks operate through.
	Proc = lockapi.Proc
	// Ctx is an opaque per-thread lock context.
	Ctx = lockapi.Ctx
	// Cell is a 64-bit shared atomic slot.
	Cell = lockapi.Cell
	// Order is a memory-order annotation.
	Order = lockapi.Order
)

// Memory orders.
const (
	Relaxed = lockapi.Relaxed
	Acquire = lockapi.Acquire
	Release = lockapi.Release
	AcqRel  = lockapi.AcqRel
	SeqCst  = lockapi.SeqCst
)

// NewNativeProc returns a processor handle for native (goroutine) use; id
// should be the worker's logical CPU for NUMA-aware locks.
func NewNativeProc(id int) *lockapi.NativeProc { return lockapi.NewNativeProc(id) }

// Colocate places cells on one simulated cache line (struct layout).
func Colocate(cells ...*Cell) { lockapi.Colocate(cells...) }

// Topology types and reference platforms (see internal/topo).
type (
	// Machine describes a multi-level NUMA machine.
	Machine = topo.Machine
	// Hierarchy is a hierarchy configuration: machine + chosen levels.
	Hierarchy = topo.Hierarchy
	// Level is a memory-hierarchy level.
	Level = topo.Level
	// Arch is the architecture family (X86 or ArmV8).
	Arch = topo.Arch
)

// Hierarchy levels and architectures.
const (
	Core       = topo.Core
	CacheGroup = topo.CacheGroup
	NUMA       = topo.NUMA
	Package    = topo.Package
	System     = topo.System
	X86        = topo.X86
	ArmV8      = topo.ArmV8
)

// Reference platforms and hierarchy configurations from the paper.
var (
	X86Server     = topo.X86Server
	Armv8Server   = topo.Armv8Server
	X86Hierarchy4 = topo.X86Hierarchy4
	X86Hierarchy3 = topo.X86Hierarchy3
	ArmHierarchy4 = topo.ArmHierarchy4
	ArmHierarchy3 = topo.ArmHierarchy3
	NewHierarchy  = topo.NewHierarchy
	Placement     = topo.Placement
)

// Deep 256–1024-vCPU machines for scaling studies beyond the paper's
// platforms (see docs/TOPOLOGIES.md).
var (
	DeepServer256  = topo.DeepServer256
	DeepServer512  = topo.DeepServer512
	DeepServer1024 = topo.DeepServer1024
	DeepServers    = topo.DeepServers
	DeepHierarchy  = topo.DeepHierarchy
)

// Basic locks (see internal/locks).
type LockType = locks.Type

// BasicLocks returns the paper's default basic-lock set for an architecture
// (Ticket, MCS, CLH, Hemlock with arch-appropriate CTR).
func BasicLocks(a Arch) []LockType { return locks.BasicLocks(a) }

// LockTypeByName resolves "tkt", "mcs", "clh", "hem", "hem-ctr", "tas",
// "ttas" or "bo".
func LockTypeByName(name string) (LockType, bool) { return locks.ByName(name) }

// CLoF composition (see internal/clof).
type (
	// Composition assigns one basic lock per hierarchy level (low→high).
	Composition = clof.Composition
	// CLoFLock is a composed multi-level NUMA-aware lock.
	CLoFLock = clof.Lock
	// Measurement, Point and Selection belong to the scripted benchmark
	// (§4.3).
	Measurement = clof.Measurement
	Point       = clof.Point
	Selection   = clof.Selection
	Policy      = clof.Policy
)

// Selection policies.
const (
	HighContention = clof.HighContention
	LowContention  = clof.LowContention
)

// ParseComposition resolves paper notation like "tkt-clh-tkt-tkt".
func ParseComposition(s string) (Composition, error) { return clof.ParseComposition(s) }

// NewLock composes a CLoF lock over hierarchy h from paper notation.
func NewLock(h *Hierarchy, comp string) (*CLoFLock, error) {
	c, err := clof.ParseComposition(comp)
	if err != nil {
		return nil, err
	}
	return clof.New(h, c)
}

// MustNewLock is NewLock that panics on error.
func MustNewLock(h *Hierarchy, comp string) *CLoFLock {
	l, err := NewLock(h, comp)
	if err != nil {
		panic(err)
	}
	return l
}

// ComposeOption customizes Compose (threshold, TAS fast path).
type ComposeOption = clof.Option

// Compose options.
var (
	// WithThreshold overrides the keep_local threshold H (default 128).
	WithThreshold = clof.WithThreshold
	// WithTASFastPath enables the §6 test-and-set fast path (forfeits
	// strict fairness).
	WithTASFastPath = clof.WithTASFastPath
)

// Compose builds a CLoF lock from an explicit Composition — the entry point
// for user-provided basic locks (see examples/customlock): any LockType
// whose New returns a correct, thread-oblivious spinlock composes.
func Compose(h *Hierarchy, comp Composition, opts ...ComposeOption) (*CLoFLock, error) {
	return clof.New(h, comp, opts...)
}

// Generate enumerates all N^M compositions of basics over `levels` levels.
func Generate(basics []LockType, levels int) []Composition { return clof.Generate(basics, levels) }

// Select applies both selection policies to scripted-benchmark results.
func Select(ms []Measurement) (Selection, error) { return clof.Select(ms) }

// Baseline NUMA-aware locks.

// NewHMCS builds the HMCS⟨n⟩ baseline over a hierarchy configuration.
func NewHMCS(h *Hierarchy) (Lock, error) { return hmcs.New(h) }

// NewCNA builds the CNA baseline for a machine.
func NewCNA(m *Machine) Lock { return cna.New(m) }

// NewShflLock builds the ShflLock baseline for a machine.
func NewShflLock(m *Machine) Lock { return shfllock.New(m) }

// NewCohortLock builds a classic two-level cohort lock C-<global>-<local>.
func NewCohortLock(m *Machine, level Level, global, local LockType) (Lock, error) {
	return cohort.New(m, level, global, local)
}

// Hierarchy discovery (§3.1; see internal/discover).

// DetectHierarchy measures the simulated machine's ping-pong speedups and
// derives a hierarchy configuration. horizon 0 uses the default; threshold
// <= 1 uses the default 1.25.
func DetectHierarchy(m *Machine, horizon int64, threshold float64) (*Hierarchy, error) {
	if horizon == 0 {
		horizon = discover.DefaultHorizon
	}
	return discover.DetectHierarchy(m, horizon, threshold)
}

// Speedups returns the Table 2 cohort speedups for a simulated machine.
func Speedups(m *Machine, horizon int64) map[Level]float64 {
	if horizon == 0 {
		horizon = discover.DefaultHorizon
	}
	return discover.Speedups(m, horizon)
}

// Simulation and workloads (see internal/memsim, internal/workload).
type (
	// SimMachine is the deterministic NUMA machine simulator.
	SimMachine = memsim.Machine
	// SimProc is a simulated virtual CPU (implements Proc).
	SimProc = memsim.Proc
	// SimConfig configures a simulator instance.
	SimConfig = memsim.Config
	// WorkloadConfig parameterizes a simulated lock benchmark.
	WorkloadConfig = workload.Config
	// WorkloadResult is its outcome.
	WorkloadResult = workload.Result
)

// NewSimMachine builds a simulator instance.
func NewSimMachine(cfg SimConfig) *SimMachine { return memsim.New(cfg) }

// RunWorkload runs a simulated contention benchmark with the given lock
// factory.
func RunWorkload(mk func() Lock, cfg WorkloadConfig) (WorkloadResult, error) {
	return workload.Run(workload.LockFactory(mk), cfg)
}

// LevelDBWorkload and KyotoWorkload are the paper's benchmark presets.
var (
	LevelDBWorkload = workload.LevelDB
	KyotoWorkload   = workload.Kyoto
)

// Verification (§4.2; see internal/mcheck).
type (
	// CheckProgram is a finite concurrent program for the model checker.
	CheckProgram = mcheck.Program
	// CheckConfig bounds an exploration.
	CheckConfig = mcheck.Config
	// CheckResult summarizes it.
	CheckResult = mcheck.Result
)

// Memory models for Check.
const (
	ModelSC  = mcheck.SC
	ModelTSO = mcheck.TSO
	ModelWMM = mcheck.WMM
)

// Check exhaustively explores a program's interleavings.
func Check(prog CheckProgram, cfg CheckConfig) CheckResult { return mcheck.Check(prog, cfg) }

// LockCheckProgram builds the canonical verification program for a lock
// factory: `threads` threads, `iters` critical sections each, with mutual
// exclusion, deadlock, termination and data-visibility checks.
func LockCheckProgram(name string, threads, iters int, mk func() Lock) CheckProgram {
	return mcheck.LockProgram(name, threads, iters, mk)
}
