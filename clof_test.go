package clof_test

import (
	"sync"
	"testing"

	clof "github.com/clof-go/clof"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README's quickstart does: build a lock from paper notation and use it
// from goroutines.
func TestPublicAPIQuickstart(t *testing.T) {
	h := clof.ArmHierarchy4()
	lock := clof.MustNewLock(h, "tkt-clh-tkt-tkt")
	if lock.Name() != "tkt-clh-tkt-tkt" {
		t.Fatalf("Name = %q", lock.Name())
	}

	const workers, iters = 8, 1000
	cpus, err := clof.Placement(h.Machine, workers)
	if err != nil {
		t.Fatal(err)
	}
	ctxs := make([]clof.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = lock.NewCtx()
	}
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := clof.NewNativeProc(cpus[id])
			for i := 0; i < iters; i++ {
				lock.Acquire(p, ctxs[id])
				counter++
				lock.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestPublicAPIDiscoveryAndSelection(t *testing.T) {
	m := clof.Armv8Server()
	h, err := clof.DetectHierarchy(m, 30_000, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 4 {
		t.Fatalf("detected depth %d, want 4", h.Depth())
	}
	comps := clof.Generate(clof.BasicLocks(clof.ArmV8), 2)
	if len(comps) != 16 {
		t.Fatalf("Generate(4 basics, 2 levels) = %d", len(comps))
	}
	sp := clof.Speedups(m, 30_000)
	if sp[clof.CacheGroup] <= sp[clof.NUMA] {
		t.Error("cache-group speedup not above numa speedup")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	m := clof.X86Server()
	h := clof.X86Hierarchy4()
	hm, err := clof.NewHMCS(h)
	if err != nil {
		t.Fatal(err)
	}
	tkt, _ := clof.LockTypeByName("tkt")
	mcs, _ := clof.LockTypeByName("mcs")
	co, err := clof.NewCohortLock(m, clof.NUMA, tkt, mcs)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []clof.Lock{hm, clof.NewCNA(m), clof.NewShflLock(m), co} {
		ctx := l.NewCtx()
		p := clof.NewNativeProc(0)
		l.Acquire(p, ctx)
		l.Release(p, ctx)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	m := clof.Armv8Server()
	res, err := clof.RunWorkload(
		func() clof.Lock { return clof.MustNewLock(clof.ArmHierarchy3(), "tkt-clh-tkt") },
		clof.LevelDBWorkload(m, 16),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 || res.ExclusionViolations != 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestPublicAPIVerification(t *testing.T) {
	tkt, _ := clof.LockTypeByName("tkt")
	prog := clof.LockCheckProgram("tkt", 2, 1, tkt.New)
	res := clof.Check(prog, clof.CheckConfig{Mode: clof.ModelSC})
	if !res.OK {
		t.Fatalf("verification failed: %s", res.Violation)
	}
	if res.States == 0 {
		t.Error("no states explored")
	}
}
