// hierdiscovery: the paper's full Fig. 5 workflow end to end on the
// simulated Armv8 server — discover the hierarchy experimentally (§3.1),
// generate all compositions (§4.1), run the scripted benchmark and select
// the best locks under both policies (§4.3), and measure the winner against
// the HMCS baseline.
//
//	go run ./examples/hierdiscovery [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	clof "github.com/clof-go/clof"
)

func main() {
	quickFlag := flag.Bool("quick", true, "reduced grid for a fast demo")
	flag.Parse()

	m := clof.Armv8Server()

	// Step 1 (§3.1): discover the memory hierarchy with the ping-pong
	// microbenchmark and derive a hierarchy configuration.
	fmt.Println("step 1: experimental hierarchy discovery")
	sp := clof.Speedups(m, 0)
	for lvl := clof.Core; lvl <= clof.System; lvl++ {
		if v, ok := sp[lvl]; ok {
			fmt.Printf("  %-12s speedup %5.2f over the system cohort\n", lvl, v)
		}
	}
	h, err := clof.DetectHierarchy(m, 0, 1.25)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("  detected hierarchy:", h)

	// Step 2 (§4.1): generate every composition of the verified basic
	// locks over the detected levels.
	basics := clof.BasicLocks(m.Arch)
	comps := clof.Generate(basics, h.Depth())
	fmt.Printf("\nstep 2: generated %d compositions of %d basic locks over %d levels\n",
		len(comps), len(basics), h.Depth())

	// Step 3 (§4.3): the scripted benchmark — each composition across a
	// contention grid on the simulated LevelDB workload.
	grid := []int{1, 8, 32, 127}
	if !*quickFlag {
		grid = []int{1, 4, 8, 16, 24, 32, 48, 64, 95, 127}
	}
	fmt.Printf("\nstep 3: scripted benchmark over threads %v (%d runs)...\n", grid, len(comps)*len(grid))
	var ms []clof.Measurement
	for _, comp := range comps {
		comp := comp
		meas := clof.Measurement{Comp: comp}
		for _, n := range grid {
			res, err := clof.RunWorkload(func() clof.Lock {
				l, _ := clof.Compose(h, comp)
				return l
			}, clof.LevelDBWorkload(m, n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			meas.Points = append(meas.Points, clof.Point{
				Threads:    n,
				Throughput: res.ThroughputOpsPerUs(),
			})
		}
		ms = append(ms, meas)
	}
	sel, err := clof.Select(ms)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  HC-best: %s\n  LC-best: %s\n  worst:   %s\n",
		sel.HCBest.Comp, sel.LCBest.Comp, sel.Worst.Comp)

	// Step 4: sanity-check the selected lock against the HMCS baseline at
	// full contention.
	fmt.Println("\nstep 4: HC-best vs HMCS at full contention")
	for _, e := range []struct {
		name string
		mk   func() clof.Lock
	}{
		{"clof " + sel.HCBest.Comp.String(), func() clof.Lock { l, _ := clof.Compose(h, sel.HCBest.Comp); return l }},
		{"hmcs", func() clof.Lock { l, _ := clof.NewHMCS(h); return l }},
	} {
		res, err := clof.RunWorkload(e.mk, clof.LevelDBWorkload(m, 127))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-28s %6.3f iter/µs (jain %.2f)\n", e.name, res.ThroughputOpsPerUs(), res.Jain())
	}
}
