// Quickstart: compose a multi-level NUMA-aware lock from paper notation and
// use it from goroutines to protect a shared counter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	clof "github.com/clof-go/clof"
)

func main() {
	// The paper's 4-level Armv8 hierarchy: cache-group, NUMA, package,
	// system. "tkt-clh-tkt-tkt" is the paper's LC-best lock for that
	// platform: Ticketlock at the cache-group level, CLH at the NUMA level,
	// Ticketlocks above.
	h := clof.ArmHierarchy4()
	lock := clof.MustNewLock(h, "tkt-clh-tkt-tkt")
	fmt.Printf("composed %s over %s (fair: %v)\n", lock.Name(), h, lock.Fair())

	const workers = 16
	const iters = 50_000

	// Workers are placed on CPUs with the paper's pinning policy; the Proc
	// id tells the lock which leaf cohort the worker belongs to. (Go cannot
	// actually pin goroutines — see DESIGN.md §1 — so this declares
	// intent; the lock still behaves correctly regardless.)
	cpus, err := clof.Placement(h.Machine, workers)
	if err != nil {
		panic(err)
	}

	// One context per worker, allocated during single-threaded setup.
	ctxs := make([]clof.Ctx, workers)
	for i := range ctxs {
		ctxs[i] = lock.NewCtx()
	}

	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := clof.NewNativeProc(cpus[id])
			for i := 0; i < iters; i++ {
				lock.Acquire(p, ctxs[id])
				counter++ // protected: no atomics needed
				lock.Release(p, ctxs[id])
			}
		}(w)
	}
	wg.Wait()

	fmt.Printf("counter = %d (want %d)\n", counter, workers*iters)
	if counter != workers*iters {
		panic("mutual exclusion violated")
	}
}
