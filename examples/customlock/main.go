// customlock: extend CLoF with a user-provided basic lock (the paper's A3
// workflow — "once a new NUMA-oblivious lock is designed ... the process can
// be repeated").
//
// The example implements a partitioned-counting "anderson-style" array lock
// (a fixed-slot array queue lock: fair, local-spinning, no per-thread
// context allocation during acquire), verifies it with the built-in model
// checker, composes it with the stock basic locks, and measures the result
// against an all-stock composition on the simulator.
//
//	go run ./examples/customlock
package main

import (
	"fmt"
	"os"

	clof "github.com/clof-go/clof"
)

// ArrayLock is an Anderson-style array queue lock: slot i holds "1" when it
// may run. Acquirers take a slot with fetch-and-add and spin locally on it;
// release grants the next slot. Fair and local-spinning, with a fixed
// capacity (slots must be >= the maximum number of contenders).
type ArrayLock struct {
	next  clof.Cell
	slots []clof.Cell
	mask  uint64
}

// NewArrayLock builds an array lock with the given power-of-two capacity.
func NewArrayLock(capacity int) *ArrayLock {
	l := &ArrayLock{slots: make([]clof.Cell, capacity), mask: uint64(capacity - 1)}
	l.slots[0].Init(1) // the first acquirer runs immediately
	return l
}

// NewCtx implements clof.Lock: the context remembers the taken slot.
func (l *ArrayLock) NewCtx() clof.Ctx { return &arrayCtx{} }

type arrayCtx struct{ slot uint64 }

// Acquire implements clof.Lock.
func (l *ArrayLock) Acquire(p clof.Proc, c clof.Ctx) {
	ctx := c.(*arrayCtx)
	ctx.slot = (p.Add(&l.next, 1, clof.AcqRel) - 1) & l.mask
	for p.Load(&l.slots[ctx.slot], clof.Acquire) == 0 {
		p.Spin()
	}
}

// Release implements clof.Lock: reset our slot, grant the next.
func (l *ArrayLock) Release(p clof.Proc, c clof.Ctx) {
	ctx := c.(*arrayCtx)
	//lint:order relaxed-ok own-slot reset; the Release grant store below orders it before the handover
	p.Store(&l.slots[ctx.slot], 0, clof.Relaxed)
	p.Store(&l.slots[(ctx.slot+1)&l.mask], 1, clof.Release)
}

// Fair: slot order is FIFO.
func (l *ArrayLock) Fair() bool { return true }

func main() {
	// Step 1 (paper Fig. 5: "verify correctness"): model-check the new lock
	// before composing it — mutual exclusion, deadlock freedom, spinloop
	// termination, and data visibility under the weak memory model.
	fmt.Println("step 1: verifying the array lock with the model checker")
	for _, mode := range []struct {
		name string
		m    clof.CheckConfig
	}{
		{"sc", clof.CheckConfig{Mode: clof.ModelSC}},
		{"wmm", clof.CheckConfig{Mode: clof.ModelWMM}},
	} {
		prog := clof.LockCheckProgram("arraylock", 3, 1, func() clof.Lock { return NewArrayLock(8) })
		res := clof.Check(prog, mode.m)
		if !res.OK {
			fmt.Fprintf(os.Stderr, "  %s: VERIFICATION FAILED: %s\n", mode.name, res.Violation)
			os.Exit(1)
		}
		fmt.Printf("  %s: verified (%d states, %d executions)\n", mode.name, res.States, res.Executions)
	}

	// Step 2: register it as a basic-lock type and compose. Here the array
	// lock serves the cache-group level (few contenders per cohort, so a
	// small slot array suffices) under stock CLH/Ticket locks.
	arr := clof.LockType{
		Name: "arr",
		New:  func() clof.Lock { return NewArrayLock(8) },
		Fair: true,
	}
	tkt, _ := clof.LockTypeByName("tkt")
	clh, _ := clof.LockTypeByName("clh")

	h := clof.ArmHierarchy3()
	custom := clof.Composition{arr, clh, tkt}
	lock, err := clof.Compose(h, custom)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nstep 2: composed %s over %s (fair: %v)\n", lock.Name(), h, lock.Fair())

	// Step 3: measure against an all-stock composition on the simulator.
	fmt.Println("\nstep 3: simulated LevelDB at 32 and 127 threads")
	for _, n := range []int{32, 127} {
		for _, e := range []struct {
			name string
			comp clof.Composition
		}{
			{"arr-clh-tkt (custom)", custom},
			{"tkt-clh-tkt (stock) ", clof.Composition{tkt, clh, tkt}},
		} {
			e := e
			res, err := clof.RunWorkload(func() clof.Lock {
				l, _ := clof.Compose(h, e.comp)
				return l
			}, clof.LevelDBWorkload(h.Machine, n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %3d threads  %s  %6.3f iter/µs\n", n, e.name, res.ThroughputOpsPerUs())
		}
	}
}
