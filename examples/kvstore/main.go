// kvstore: run the LevelDB-style readrandom benchmark of internal/kvstore
// natively with different DB locks — the Go analog of the paper's
// LD_PRELOAD lock interposition on LevelDB (§5.1.2).
//
//	go run ./examples/kvstore [-threads N] [-keys N] [-ms N]
//
// Note (DESIGN.md §1): native goroutine numbers reflect the Go scheduler as
// much as the locks; the paper-shaped comparisons live on the simulator
// (cmd/clof-figures). This example shows the real library in real use.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	clof "github.com/clof-go/clof"
	"github.com/clof-go/clof/internal/kvstore"
)

func main() {
	threads := flag.Int("threads", 2*runtime.GOMAXPROCS(0), "reader goroutines")
	keys := flag.Int("keys", 10_000, "preloaded key-space size")
	ms := flag.Int("ms", 200, "measurement duration per lock (milliseconds)")
	flag.Parse()

	h3 := clof.X86Hierarchy3()
	entries := []struct {
		name string
		mk   func() clof.Lock
	}{
		{"ticket", func() clof.Lock { t, _ := clof.LockTypeByName("tkt"); return t.New() }},
		{"mcs", func() clof.Lock { t, _ := clof.LockTypeByName("mcs"); return t.New() }},
		{"cna", func() clof.Lock { return clof.NewCNA(h3.Machine) }},
		{"clof<3> tkt-mcs-mcs", func() clof.Lock { return clof.MustNewLock(h3, "tkt-mcs-mcs") }},
	}

	fmt.Printf("readrandom: %d threads, %d keys, %dms per lock (GOMAXPROCS=%d)\n\n",
		*threads, *keys, *ms, runtime.GOMAXPROCS(0))
	for _, e := range entries {
		db := kvstore.Open(kvstore.Options{Lock: e.mk()})
		kvstore.Preload(db, *keys)
		res := kvstore.ReadRandom(db, kvstore.ReadRandomOptions{
			Keys:     *keys,
			Threads:  *threads,
			Duration: time.Duration(*ms) * time.Millisecond,
		})
		fmt.Printf("%-22s %8.3f reads/µs  (%d reads, %d misses)\n",
			e.name, res.ThroughputOpsPerUs(), res.Ops, res.Misses)
	}
}
