GO ?= go

.PHONY: build test lint lint-report lint-litmus doccheck check chaos figures figures-quick collapse-quick kv-quick occ-quick scale-quick bench bench-smoke bench-kv bench-scale

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static lock-discipline suite (atomic access, memory-order policy,
# copylocks, spin hygiene) plus the whole-program lock-graph analyzers
# (lockorder: cross-package deadlock cycles and CLoF level inversions;
# heldescape: lock-protected fields read with no lock held). Exits nonzero
# on findings.
lint:
	$(GO) run ./cmd/clof-lint ./...

# Machine-readable findings report (position-sorted JSON array; "[]" when
# clean) into figures-out/ for the CI artifact. Exits nonzero on findings,
# like lint, but the report is written either way.
lint-report:
	mkdir -p figures-out
	$(GO) run ./cmd/clof-lint -json ./... > figures-out/lint-report.json

# The lint→mcheck bridge: emit one runnable mcheck litmus program per
# statically detected lock-order cycle into figures-out/litmus/ (each
# `go run`s from the repository root and exits 0 iff the model checker
# reproduces the deadlock). Waived cycles are skipped, so a clean tree
# ⇒ "no live lock-order cycles".
lint-litmus:
	$(GO) run ./cmd/clof-lint -litmus figures-out/litmus ./... || true

# Godoc discipline: package comments everywhere, doc comments on every
# exported top-level declaration (sh+awk only; see scripts/doccheck.sh).
doccheck:
	sh scripts/doccheck.sh

# Full verification gate: build + vet + lint + doccheck + tests + race pass
# + chaos determinism smoke (see scripts/check.sh).
check:
	scripts/check.sh

# Fault-injection robustness sweep: full lock catalog x all fault presets.
chaos:
	$(GO) run ./cmd/clof-chaos -out figures-out/chaos.csv

figures:
	$(GO) run ./cmd/clof-figures -exp all -out figures-out

# Reduced-scale smoke of the experiment engine: a small experiment set on
# the parallel runner, CSVs + results.json into figures-out/quick/ (kept
# apart from the checked-in full-scale CSVs). CI uploads the directory as
# a build artifact.
figures-quick:
	$(GO) run ./cmd/clof-figures -exp fig2,fig4,fairness -quick -j 0 -out figures-out/quick

# Saturation-collapse smoke: the concurrency-restriction experiment
# (internal/cr, EXPERIMENTS.md "Avoiding collapse") at reduced scale, into
# its own artifact directory so its results.json does not clobber the
# figures-quick manifest. CI uploads the CSVs + results.json; the committed
# full-scale curves are figures-out/collapse-*.csv.
collapse-quick:
	$(GO) run ./cmd/clof-figures -exp collapse -quick -j 0 -out figures-out/collapse-quick

# Sharded-serving smoke: the shards x lock family x mix sweep (internal/store,
# EXPERIMENTS.md "Sharded serving") at reduced scale, into its own artifact
# directory. CI uploads the CSVs + results.json (per-shard contention blocks
# ride each point's obs field); the committed full-scale curves are
# figures-out/kv-*.csv.
kv-quick:
	$(GO) run ./cmd/clof-figures -exp kv -quick -j 0 -out figures-out/kv-quick

# Optimistic-read smoke: just the two read-mostly panels (x86 + Armv8) the
# seq: acceptance criterion is asserted on (EXPERIMENTS.md "Optimistic
# reads"), at reduced scale, into their own artifact directory. CI uploads
# the CSVs + results.json; the committed full-scale curves are
# figures-out/kv-read-mostly*.csv.
occ-quick:
	$(GO) run ./cmd/clof-figures -exp occ -quick -j 0 -out figures-out/occ-quick

# Simulator throughput baseline: runs the canonical memsim scenarios
# (~300ms each) and records host-side simops/s into BENCH_baseline.json.
# Regenerate and commit after execution-core changes; see EXPERIMENTS.md
# "Profiling the simulator".
bench:
	CLOF_BENCH_OUT=$(CURDIR)/BENCH_baseline.json $(GO) test ./internal/memsim -run TestWriteBenchArtifact -count=1 -v
	$(GO) test ./internal/memsim ./internal/eventq -run XXX -bench 'BenchmarkMachine|BenchmarkQueue' -benchtime 200ms

# CI smoke: every benchmark executes once (so it cannot silently rot) and a
# quick BENCH_smoke.json artifact is produced for the workflow to upload.
bench-smoke:
	CLOF_BENCH_OUT=$(CURDIR)/BENCH_smoke.json CLOF_BENCH_QUICK=1 $(GO) test ./internal/memsim -run TestWriteBenchArtifact -count=1 -v
	$(GO) test ./internal/memsim ./internal/eventq -run XXX -bench 'BenchmarkMachine|BenchmarkQueue' -benchtime 1x

# Deep-topology smoke: the 256-1024-vCPU bigmachine sweep (internal/topo
# deep machines, EXPERIMENTS.md "Scaling the substrate") at reduced scale,
# into its own artifact directory. CI uploads the CSVs + results.json; the
# committed full-scale curves are figures-out/bigmachine-*.csv.
scale-quick:
	$(GO) run ./cmd/clof-figures -exp bigmachine -quick -j 0 -out figures-out/scale-quick

# Deep-topology throughput baseline: full-machine contended runs on the
# 256/512/1024-vCPU deep machines (~300ms each) into BENCH_scale.json.
# Regenerate and commit after execution-core or topology changes; see
# EXPERIMENTS.md "Scaling the substrate".
bench-scale:
	CLOF_SCALE_OUT=$(CURDIR)/BENCH_scale.json $(GO) test ./internal/memsim -run TestWriteBenchScaleArtifact -count=1 -v
	$(GO) test ./internal/memsim -run XXX -bench 'BenchmarkMachineScale' -benchtime 100ms

# Scripted-benchmark artifact for the sharded serving workload: every CLoF
# composition as the per-shard lock, read-mostly mix, recorded point by
# point into BENCH_kv.json. Regenerate and commit after lock-algorithm or
# serving-engine changes.
bench-kv:
	$(GO) run ./cmd/clof-bench -workload kv -out $(CURDIR)/BENCH_kv.json
