GO ?= go

.PHONY: build test check chaos figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification gate: build + vet + tests + race pass + chaos
# determinism smoke (see scripts/check.sh).
check:
	scripts/check.sh

# Fault-injection robustness sweep: full lock catalog x all fault presets.
chaos:
	$(GO) run ./cmd/clof-chaos -out figures-out/chaos.csv

figures:
	$(GO) run ./cmd/clof-figures -exp all -out figures-out
