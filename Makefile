GO ?= go

.PHONY: build test lint check chaos figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static lock-discipline suite (atomic access, memory-order policy,
# copylocks, spin hygiene). Exits nonzero on findings.
lint:
	$(GO) run ./cmd/clof-lint ./...

# Full verification gate: build + vet + lint + tests + race pass + chaos
# determinism smoke (see scripts/check.sh).
check:
	scripts/check.sh

# Fault-injection robustness sweep: full lock catalog x all fault presets.
chaos:
	$(GO) run ./cmd/clof-chaos -out figures-out/chaos.csv

figures:
	$(GO) run ./cmd/clof-figures -exp all -out figures-out
