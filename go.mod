module github.com/clof-go/clof

go 1.22
