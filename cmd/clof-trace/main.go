// clof-trace runs a small contended scenario on the NUMA simulator with
// operation tracing enabled and prints the per-CPU memory-operation
// timeline — a debugging lens into lock protocols (who spins where, when
// the handover store lands, how the CLoF pass flag travels).
//
// Usage:
//
//	clof-trace [-lock mcs|tkt|clh|hem|qspin|clof:COMP|hmcs] [-threads N] [-ops N] [-platform x86|armv8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	clof "github.com/clof-go/clof"
	"github.com/clof-go/clof/internal/hmcs"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/memsim"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/topo"
)

func main() {
	lockSpec := flag.String("lock", "mcs", "lock under trace: a basic lock name, clof:COMPOSITION, or hmcs")
	threads := flag.Int("threads", 3, "contending virtual CPUs")
	ops := flag.Int("ops", 2, "critical sections per thread")
	platform := flag.String("platform", "armv8", "simulated platform")
	flag.Parse()

	var mach *topo.Machine
	if *platform == "x86" {
		mach = topo.X86Server()
	} else {
		mach = topo.Armv8Server()
	}
	h := topo.MustHierarchy(mach, topo.CacheGroup, topo.NUMA, topo.System)

	var lock lockapi.Lock
	switch {
	case strings.HasPrefix(*lockSpec, "clof:"):
		lock = clof.MustNewLock(h, strings.TrimPrefix(*lockSpec, "clof:"))
	case *lockSpec == "hmcs":
		lock = hmcs.Must(h)
	default:
		typ, ok := locks.ByName(*lockSpec)
		if !ok {
			fmt.Fprintf(os.Stderr, "clof-trace: unknown lock %q (try %v, clof:COMP, hmcs)\n", *lockSpec, locks.Names())
			os.Exit(1)
		}
		lock = typ.New()
	}

	// Cell naming and line formatting live in the observability layer
	// (internal/obs), shared with clof-obs' traffic tables.
	namer := obs.NewNamer()
	sim := memsim.New(memsim.Config{
		Machine: mach,
		Trace: func(ev memsim.TraceEvent) {
			fmt.Println(obs.FormatEvent(ev, namer))
		},
	})

	ctxs := make([]lockapi.Ctx, *threads)
	for i := range ctxs {
		ctxs[i] = lock.NewCtx()
	}
	cpus := topo.MustPlacement(mach, *threads)
	var shared lockapi.Cell
	for i := 0; i < *threads; i++ {
		i := i
		sim.Spawn(cpus[i], func(p *memsim.Proc) {
			for n := 0; n < *ops; n++ {
				lock.Acquire(p, ctxs[i])
				p.Add(&shared, 1, clof.Relaxed)
				p.Work(50)
				lock.Release(p, ctxs[i])
				p.Work(100)
			}
		})
	}
	res := sim.Run(0)
	fmt.Printf("\n%d events, final virtual time %dns, counter=%d (want %d)\n",
		res.Events, res.Now, shared.Raw().Load(), *threads**ops)
	if res.Deadlock {
		fmt.Println("DEADLOCK: parked CPUs", res.ParkedCPUs)
		os.Exit(1)
	}
}
