// clof-chaos sweeps the fault-injection plans (internal/faultinject) across
// the lock catalog (internal/catalog) on the simulated platform and writes a
// CSV robustness report: throughput, fairness, abandoned acquires, injected
// preemptions/stalls, the max handover gap, and the starvation verdict for
// every (plan, lock, threads) point.
//
// The sweep is deterministic: with the same flags and seed the output file
// is byte-identical — catalog order, sorted plan names, and the simulator's
// seeded virtual time leave nothing to the host scheduler.
//
// Usage:
//
//	clof-chaos [-platform x86|armv8] [-locks CSV] [-plans CSV] [-threads CSV] [-seed N] [-horizon NS] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// minShare is the anti-starvation gate: a thread below this fraction of the
// mean per-thread progress counts as starved (the paper-default watchdog
// threshold, see locktest.Watchdog).
const minShare = 0.05

func main() {
	platform := flag.String("platform", "x86", "simulated platform: x86 or armv8")
	locksCSV := flag.String("locks", "", "comma-separated catalog lock names (default: the full catalog)")
	plansCSV := flag.String("plans", "", "comma-separated fault plan names (default: all presets)")
	threadsCSV := flag.String("threads", "8,16", "comma-separated contention levels")
	seed := flag.Uint64("seed", 42, "simulation seed (same seed => byte-identical CSV)")
	horizon := flag.Int64("horizon", workload.DefaultHorizon, "virtual run duration in ns")
	out := flag.String("out", filepath.Join("figures-out", "chaos.csv"), "output CSV path")
	flag.Parse()

	var mach *topo.Machine
	switch *platform {
	case "x86":
		mach = topo.X86Server()
	case "armv8":
		mach = topo.Armv8Server()
	default:
		fatal(fmt.Errorf("unknown platform %q (want x86 or armv8)", *platform))
	}

	entries := catalog.Locks()
	if *locksCSV != "" {
		entries = nil
		for _, name := range splitCSV(*locksCSV) {
			e, ok := catalog.ByName(name)
			if !ok {
				fatal(fmt.Errorf("unknown lock %q (catalog: %s)", name, strings.Join(catalog.Names(), ", ")))
			}
			entries = append(entries, e)
		}
	}

	planNames := faultinject.Names() // sorted
	if *plansCSV != "" {
		planNames = splitCSV(*plansCSV)
	}
	plans := make([]*faultinject.Plan, len(planNames))
	for i, name := range planNames {
		p, ok := faultinject.ByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown fault plan %q (presets: %s)", name, strings.Join(faultinject.Names(), ", ")))
		}
		plans[i] = p
	}

	var grid []int
	for _, s := range splitCSV(*threadsCSV) {
		n, err := strconv.Atoi(s)
		if err != nil {
			fatal(err)
		}
		if n < 1 || n > mach.NumCPUs() {
			fatal(fmt.Errorf("thread count %d outside 1..%d for %s", n, mach.NumCPUs(), mach.Name))
		}
		grid = append(grid, n)
	}

	var b strings.Builder
	b.WriteString("plan,lock,family,threads,total,iter_per_us,jain,abandoned,preemptions,stalls,max_handover_gap_ns,starved\n")
	points := len(plans) * len(entries) * len(grid)
	fmt.Fprintf(os.Stderr, "chaos sweep: %s, %d locks x %d plans x %d contention levels = %d points\n",
		mach.Name, len(entries), len(plans), len(grid), points)

	starvedTotal := 0
	for pi, plan := range plans {
		for _, e := range entries {
			e := e
			for _, threads := range grid {
				cfg := workload.LevelDB(mach, threads)
				cfg.Horizon = *horizon
				cfg.Seed = *seed
				cfg.Faults = plan
				res, err := workload.Run(func() lockapi.Lock { return e.New(mach) }, cfg)
				if err != nil {
					fatal(fmt.Errorf("plan %s, lock %s, %d threads: %w", planNames[pi], e.Name, threads, err))
				}
				if res.ExclusionViolations > 0 {
					fatal(fmt.Errorf("plan %s, lock %s, %d threads: %d mutual-exclusion violations",
						planNames[pi], e.Name, threads, res.ExclusionViolations))
				}
				starved := len(res.Starved(minShare))
				starvedTotal += starved
				fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%s,%s,%d,%d,%d,%d,%d\n",
					planNames[pi], e.Name, e.Family, threads,
					res.Total,
					strconv.FormatFloat(res.ThroughputOpsPerUs(), 'f', 4, 64),
					strconv.FormatFloat(res.Jain(), 'f', 4, 64),
					res.Abandoned, res.Preemptions, res.Stalls,
					res.MaxHandoverGapNS, starved)
			}
		}
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, points)
	if starvedTotal > 0 {
		fmt.Printf("watchdog: %d starved-thread observations (threads below %.0f%% of mean progress)\n",
			starvedTotal, minShare*100)
	} else {
		fmt.Println("watchdog: no starvation observed")
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clof-chaos:", err)
	os.Exit(1)
}
