// clof-chaos sweeps the fault-injection plans (internal/faultinject) across
// the lock catalog (internal/catalog) on the simulated platform and writes a
// CSV robustness report: throughput, fairness, abandoned acquires, injected
// preemptions/stalls, the max handover gap, and the starvation verdict for
// every (plan, lock, threads) point.
//
// The sweep runs on the experiment engine (internal/exp): points execute in
// parallel on a bounded worker pool (-j) with per-point seeds derived by
// stable hashing from the flag set, so with the same flags the CSV is
// byte-identical at any -j level. Every point is also recorded in a
// results.json artifact next to the CSV.
//
// Usage:
//
//	clof-chaos [-platform x86|armv8] [-locks CSV] [-plans CSV] [-threads CSV]
//	           [-seed N] [-horizon NS] [-j N] [-out FILE]
//
// -locks accepts catalog names and "family:<tag>" filters, e.g.
// "mcs,family:clof".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/faultinject"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

// minShare is the anti-starvation gate: a thread below this fraction of the
// mean per-thread progress counts as starved (the paper-default watchdog
// threshold, see locktest.Watchdog).
const minShare = 0.05

func main() {
	platform := flag.String("platform", "x86", "simulated platform: x86, armv8, or oversub")
	locksCSV := flag.String("locks", "", "comma-separated catalog lock names or family:<tag> filters (default: the full catalog)")
	plansCSV := flag.String("plans", "", "comma-separated fault plan names (default: all presets)")
	threadsCSV := flag.String("threads", "8,16", "comma-separated contention levels")
	seed := flag.Uint64("seed", 42, "base seed (same flags => byte-identical CSV)")
	horizon := flag.Int64("horizon", workload.DefaultHorizon, "virtual run duration in ns")
	jobs := flag.Int("j", 0, "parallel sweep points (0 = GOMAXPROCS); output is identical at any level")
	out := flag.String("out", filepath.Join("figures-out", "chaos.csv"), "output CSV path (results.json written alongside)")
	flag.Parse()

	var mach *topo.Machine
	switch *platform {
	case "x86":
		mach = topo.X86Server()
	case "armv8":
		mach = topo.Armv8Server()
	case "oversub":
		mach = topo.OversubscribedServer()
	default:
		fatal(fmt.Errorf("unknown platform %q (want x86, armv8, or oversub)", *platform))
	}

	entries, err := catalog.Select(splitCSV(*locksCSV))
	if err != nil {
		fatal(err)
	}

	planNames := faultinject.Names() // sorted
	if *plansCSV != "" {
		planNames = splitCSV(*plansCSV)
	}
	plans := make([]*faultinject.Plan, len(planNames))
	for i, name := range planNames {
		p, ok := faultinject.ByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown fault plan %q (presets: %s)", name, strings.Join(faultinject.Names(), ", ")))
		}
		plans[i] = p
	}

	var grid []int
	for _, s := range splitCSV(*threadsCSV) {
		n, err := strconv.Atoi(s)
		if err != nil {
			fatal(err)
		}
		if n < 1 || n > mach.NumCPUs() {
			fatal(fmt.Errorf("thread count %d outside 1..%d for %s", n, mach.NumCPUs(), mach.Name))
		}
		grid = append(grid, n)
	}

	spec := exp.Spec{
		Name:     "chaos",
		Platform: *platform,
		Workload: "leveldb",
		Threads:  grid,
		Seed:     *seed,
		Notes:    fmt.Sprintf("fault plans: %s; horizon=%dns", strings.Join(planNames, ","), *horizon),
	}
	for _, e := range entries {
		spec.Locks = append(spec.Locks, e.Name)
	}

	type rowMeta struct {
		plan    string
		entry   catalog.Entry
		threads int
	}
	var rows []rowMeta
	var points []exp.Point
	for pi, plan := range plans {
		for _, e := range entries {
			for _, threads := range grid {
				plan, e, threads := plan, e, threads
				rows = append(rows, rowMeta{planNames[pi], e, threads})
				points = append(points, exp.Point{
					Key: fmt.Sprintf("plan=%s/lock=%s/threads=%d", planNames[pi], e.Name, threads),
					Run: func(s uint64) exp.Sample {
						cfg := workload.LevelDB(mach, threads)
						cfg.Horizon = *horizon
						cfg.Seed = s
						cfg.Faults = plan
						res, err := workload.Run(func() lockapi.Lock { return e.New(mach) }, cfg)
						if err != nil {
							return exp.Sample{Err: err.Error()}
						}
						return exp.Sample{
							Throughput: res.ThroughputOpsPerUs(),
							Jain:       res.Jain(),
							Total:      res.Total,
							Metrics: map[string]float64{
								"abandoned":           float64(res.Abandoned),
								"preemptions":         float64(res.Preemptions),
								"stalls":              float64(res.Stalls),
								"max_handover_gap_ns": float64(res.MaxHandoverGapNS),
								"starved":             float64(len(res.Starved(minShare))),
								"violations":          float64(res.ExclusionViolations),
							},
						}
					},
				})
			}
		}
	}

	fmt.Fprintf(os.Stderr, "chaos sweep: %s, %d locks x %d plans x %d contention levels = %d points\n",
		mach.Name, len(entries), len(plans), len(grid), len(points))

	manifestPath := strings.TrimSuffix(*out, ".csv") + "-results.json"
	manifest := exp.NewManifest(manifestPath)
	runner := &exp.Runner{Jobs: *jobs, Manifest: manifest}
	results := runner.Run(spec, points)

	var b strings.Builder
	b.WriteString("plan,lock,family,threads,total,iter_per_us,jain,abandoned,preemptions,stalls,max_handover_gap_ns,starved\n")
	starvedTotal := 0
	for i, r := range results {
		row := rows[i]
		if len(r.Errors) > 0 {
			fatal(fmt.Errorf("plan %s, lock %s, %d threads: %s", row.plan, row.entry.Name, row.threads, r.Errors[0]))
		}
		if r.Metrics["violations"] > 0 {
			fatal(fmt.Errorf("plan %s, lock %s, %d threads: %.0f mutual-exclusion violations",
				row.plan, row.entry.Name, row.threads, r.Metrics["violations"]))
		}
		starved := int(r.Metrics["starved"])
		starvedTotal += starved
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%s,%s,%d,%d,%d,%d,%d\n",
			row.plan, row.entry.Name, row.entry.Family, row.threads,
			r.Total,
			strconv.FormatFloat(r.Tput.Median, 'f', 4, 64),
			strconv.FormatFloat(r.Jain.Median, 'f', 4, 64),
			int64(r.Metrics["abandoned"]), int64(r.Metrics["preemptions"]), int64(r.Metrics["stalls"]),
			int64(r.Metrics["max_handover_gap_ns"]), starved)
	}

	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, len(points))
	if err := manifest.Save(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d points)\n", manifestPath, manifest.Len())
	if starvedTotal > 0 {
		fmt.Printf("watchdog: %d starved-thread observations (threads below %.0f%% of mean progress)\n",
			starvedTotal, minShare*100)
	} else {
		fmt.Println("watchdog: no starvation observed")
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clof-chaos:", err)
	os.Exit(1)
}
