// clof-figures regenerates the paper's tables and figures on the NUMA
// simulator and writes them as CSV (plus ASCII summaries on stderr).
//
// Usage:
//
//	clof-figures [-exp all|table1|fig1|table2|fig2|fig3|fig4|fig9|fig10|fairness|ablations|verify] \
//	             [-out DIR] [-quick] [-runs N]
//
// Every run is deterministic; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/clof-go/clof/internal/figures"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, table1, fig1, table2, fig2, fig3, fig4, fig9, fig10, fairness, ablations, biglittle, verify, hier)")
	out := flag.String("out", "figures-out", "output directory for CSV files")
	quickFlag := flag.Bool("quick", false, "reduced grids and horizons (smoke run)")
	runs := flag.Int("runs", 0, "repetitions per point (0 = experiment default)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	o := figures.Options{Quick: *quickFlag, Runs: *runs}
	if !*quiet {
		o.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	emit := func(f *figures.Figure) {
		path := filepath.Join(*out, f.ID+".csv")
		file, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := f.WriteCSV(file); err != nil {
			fatal(err)
		}
		file.Close()
		if err := f.WriteASCII(os.Stderr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if want("table1") {
		ran = true
		emit(figures.Table1())
	}
	if want("fig1") {
		ran = true
		x86, arm := figures.Fig1(o)
		for name, hm := range map[string]string{"fig1a-x86": x86.ASCII(), "fig1b-armv8": arm.ASCII()} {
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(hm), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if want("table2") {
		ran = true
		emit(figures.Table2(o))
	}
	if want("hier") {
		ran = true
		for _, h := range figures.DetectedHierarchies(o) {
			fmt.Println("detected hierarchy:", h)
		}
	}
	if want("fig2") {
		ran = true
		emit(figures.Fig2(o))
	}
	if want("fig3") {
		ran = true
		for _, f := range figures.Fig3(o) {
			emit(f)
		}
	}
	if want("fig4") {
		ran = true
		emit(figures.Fig4(o))
	}
	if want("fig9") {
		ran = true
		for _, r := range figures.Fig9(o) {
			emit(r.Figure)
			fmt.Printf("%s: HC-best=%s LC-best=%s worst=%s\n",
				r.Figure.ID, r.Selection.HCBest.Comp, r.Selection.LCBest.Comp, r.Selection.Worst.Comp)
		}
	}
	if want("fig10") {
		ran = true
		for _, f := range figures.Fig10(o) {
			emit(f)
		}
	}
	if want("fairness") {
		ran = true
		emit(figures.Fairness(o))
	}
	if want("ablations") {
		ran = true
		emit(figures.AblationKeepLocal(o))
		emit(figures.AblationHasWaiters(o))
		emit(figures.AblationFastPath(o))
		emit(figures.CompositionAnalysis(o))
	}
	if want("biglittle") {
		ran = true
		emit(figures.BigLittle(o))
	}
	if want("verify") {
		ran = true
		fmt.Println("verification table (see also cmd/clof-verify):")
		for _, r := range figures.VerificationTable(o) {
			status := "OK"
			if !r.Result.OK {
				status = "VIOLATION: " + r.Result.Violation
			}
			fmt.Printf("  %-34s %-4s states=%-8d execs=%-8d %8s  %s\n",
				r.Program, r.Mode, r.Result.States, r.Result.Executions,
				r.Elapsed.Round(1000000).String(), status)
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clof-figures:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
