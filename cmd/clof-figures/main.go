// clof-figures regenerates the paper's tables and figures on the NUMA
// simulator and writes them as CSV (plus ASCII summaries on stderr). The
// measurement grids run on the experiment engine (internal/exp): grid
// points execute in parallel on a bounded worker pool (-j), per-point seeds
// are derived by stable hashing, and every point is recorded in a
// results.json manifest next to the CSVs. Output is byte-for-byte identical
// at any -j level; -resume skips points already present in the manifest.
//
// Usage:
//
//	clof-figures [-exp ID[,ID...]] [-list] [-out DIR] [-quick] [-runs N] [-j N] [-resume]
//
// See EXPERIMENTS.md ("The experiment engine") for the artifact schema and
// the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/figures"
	"github.com/clof-go/clof/internal/prof"
)

// expCtx is what one experiment's runner gets to work with.
type expCtx struct {
	o    figures.Options
	out  string
	emit func(*figures.Figure)
}

// experiment is one runnable entry of the registry.
type experiment struct {
	id  string
	run func(c *expCtx)
}

// notInAll marks focused aliases of other registry entries: selectable by ID,
// skipped by "-exp all" because the figures they emit are already covered
// there.
var notInAll = map[string]bool{"occ": true}

// registry lists every experiment in "-exp all" execution order.
var registry = []experiment{
	{"table1", func(c *expCtx) { c.emit(figures.Table1()) }},
	{"fig1", func(c *expCtx) {
		x86, arm := figures.Fig1(c.o)
		for name, hm := range map[string]string{"fig1a-x86": x86.ASCII(), "fig1b-armv8": arm.ASCII()} {
			path := filepath.Join(c.out, name+".txt")
			if err := os.WriteFile(path, []byte(hm), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}},
	{"table2", func(c *expCtx) { c.emit(figures.Table2(c.o)) }},
	{"hier", func(c *expCtx) {
		for _, h := range figures.DetectedHierarchies(c.o) {
			fmt.Println("detected hierarchy:", h)
		}
	}},
	{"fig2", func(c *expCtx) { c.emit(figures.Fig2(c.o)) }},
	{"fig3", func(c *expCtx) {
		for _, f := range figures.Fig3(c.o) {
			c.emit(f)
		}
	}},
	{"fig4", func(c *expCtx) { c.emit(figures.Fig4(c.o)) }},
	{"fig9", func(c *expCtx) {
		for _, r := range figures.Fig9(c.o) {
			c.emit(r.Figure)
			fmt.Printf("%s: HC-best=%s LC-best=%s worst=%s\n",
				r.Figure.ID, r.Selection.HCBest.Comp, r.Selection.LCBest.Comp, r.Selection.Worst.Comp)
		}
	}},
	{"fig10", func(c *expCtx) {
		for _, f := range figures.Fig10(c.o) {
			c.emit(f)
		}
	}},
	{"fairness", func(c *expCtx) { c.emit(figures.Fairness(c.o)) }},
	{"handover", func(c *expCtx) { c.emit(figures.Handover(c.o)) }},
	{"ablations", func(c *expCtx) {
		c.emit(figures.AblationKeepLocal(c.o))
		c.emit(figures.AblationHasWaiters(c.o))
		c.emit(figures.AblationFastPath(c.o))
		c.emit(figures.CompositionAnalysis(c.o))
	}},
	{"biglittle", func(c *expCtx) { c.emit(figures.BigLittle(c.o)) }},
	{"collapse", func(c *expCtx) {
		for _, f := range figures.Collapse(c.o) {
			c.emit(f)
		}
	}},
	{"kv", func(c *expCtx) {
		for _, f := range figures.KV(c.o) {
			c.emit(f)
		}
	}},
	{"bigmachine", func(c *expCtx) {
		for _, f := range figures.BigMachine(c.o) {
			c.emit(f)
		}
	}},
	// occ is the focused alias for the optimistic-read work: just the two
	// read-mostly panels (x86 + armv8) the seq: acceptance criterion is
	// asserted on. Not in "all" (see notInAll) — kv already emits both.
	{"occ", func(c *expCtx) {
		for _, f := range figures.KVOCC(c.o) {
			c.emit(f)
		}
	}},
	{"verify", func(c *expCtx) {
		fmt.Println("verification table (see also cmd/clof-verify):")
		for _, r := range figures.VerificationTable(c.o) {
			status := "OK"
			if !r.Result.OK {
				status = "VIOLATION: " + r.Result.Violation
			}
			fmt.Printf("  %-34s %-4s states=%-8d execs=%-8d %8s  %s\n",
				r.Program, r.Mode, r.Result.States, r.Result.Executions,
				r.Elapsed.Round(1000000).String(), status)
		}
	}},
}

func knownIDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// selectExperiments expands a comma-separated -exp value against the
// registry, preserving registry order and rejecting unknown IDs.
func selectExperiments(expFlag string) ([]experiment, error) {
	want := map[string]bool{}
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if id == "all" {
			for _, e := range registry {
				if !notInAll[e.id] {
					want[e.id] = true
				}
			}
			continue
		}
		found := false
		for _, e := range registry {
			if e.id == id {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(knownIDs(), ", "))
		}
		want[id] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("no experiment selected (known: %s)", strings.Join(knownIDs(), ", "))
	}
	var out []experiment
	for _, e := range registry {
		if want[e.id] {
			out = append(out, e)
		}
	}
	return out, nil
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs (see -list), or all")
	list := flag.Bool("list", false, "print the known experiment IDs and exit")
	out := flag.String("out", "figures-out", "output directory for CSVs and results.json")
	quickFlag := flag.Bool("quick", false, "reduced grids and horizons (smoke run)")
	runs := flag.Int("runs", 0, "repetitions per point (0 = experiment default)")
	jobs := flag.Int("j", 0, "parallel grid points (0 = GOMAXPROCS); output is identical at any level")
	resume := flag.Bool("resume", false, "reuse points already recorded in <out>/results.json")
	quiet := flag.Bool("q", false, "suppress progress output")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		for _, id := range knownIDs() {
			fmt.Println(id)
		}
		return
	}

	selected, err := selectExperiments(*expFlag)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	manifestPath := filepath.Join(*out, "results.json")
	var manifest *exp.Manifest
	if *resume {
		if manifest, err = exp.LoadManifest(manifestPath); err != nil {
			fatal(err)
		}
	} else {
		manifest = exp.NewManifest(manifestPath)
	}

	o := figures.Options{Quick: *quickFlag, Runs: *runs, Jobs: *jobs, Manifest: manifest}
	if !*quiet {
		o.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	c := &expCtx{o: o, out: *out}
	c.emit = func(f *figures.Figure) {
		path := filepath.Join(*out, f.ID+".csv")
		file, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := f.WriteCSV(file); err != nil {
			fatal(err)
		}
		file.Close()
		if err := f.WriteASCII(os.Stderr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	for _, e := range selected {
		e.run(c)
	}
	if err := manifest.Save(); err != nil {
		fatal(err)
	}
	sum := manifest.Summary()
	fmt.Printf("wrote %s (%d points, %.0f ms measuring, %.0f iters/sec)\n",
		manifestPath, sum.Points, sum.WallMSTotal, sum.ItersPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clof-figures:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
