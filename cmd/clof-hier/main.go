// clof-hier runs the paper's §3.1 hierarchy discovery on a simulated
// platform: it measures the pairwise ping-pong heatmap (Fig. 1), prints the
// Table 2 cohort speedups, and emits a hierarchy configuration file for the
// lock generator — the first box of the paper's Fig. 5 workflow.
//
// Usage:
//
//	clof-hier [-platform x86|armv8] [-o hierarchy.json] [-heatmap] [-stride N] [-threshold F]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/clof-go/clof/internal/discover"
	"github.com/clof-go/clof/internal/topo"
)

func main() {
	platform := flag.String("platform", "armv8", "simulated platform: x86 or armv8")
	out := flag.String("o", "", "write the detected hierarchy configuration JSON to this file")
	heatmap := flag.Bool("heatmap", false, "print the ASCII heatmap (Fig. 1)")
	stride := flag.Int("stride", 2, "heatmap CPU sampling stride")
	threshold := flag.Float64("threshold", 1.25, "level-keeping speedup threshold (tuning point)")
	horizon := flag.Int64("horizon", discover.DefaultHorizon, "per-pair virtual duration (ns)")
	flag.Parse()

	var m *topo.Machine
	switch *platform {
	case "x86":
		m = topo.X86Server()
	case "armv8", "arm":
		m = topo.Armv8Server()
	default:
		fmt.Fprintf(os.Stderr, "clof-hier: unknown platform %q\n", *platform)
		os.Exit(1)
	}

	if *heatmap {
		fmt.Printf("heatmap of %s (stride %d, darker = higher throughput):\n", m.Name, *stride)
		fmt.Print(discover.Measure(m, *horizon, *stride).ASCII())
	}

	fmt.Printf("cohort speedups over the system cohort (%s):\n", m.Name)
	sp := discover.Speedups(m, *horizon)
	levels := make([]topo.Level, 0, len(sp))
	for lvl := range sp {
		levels = append(levels, lvl)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	for _, lvl := range levels {
		fmt.Printf("  %-12s %6.2f\n", lvl, sp[lvl])
	}

	h, err := discover.DetectHierarchy(m, *horizon, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clof-hier:", err)
		os.Exit(1)
	}
	fmt.Println("detected hierarchy:", h)
	if *out != "" {
		b, err := h.MarshalText()
		if err == nil {
			err = os.WriteFile(*out, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "clof-hier:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
