module abbamod

go 1.24
