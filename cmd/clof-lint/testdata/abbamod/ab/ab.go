// Package ab is the minimal ABBA module for the clof-lint -litmus e2e
// test: exactly one lock-order cycle and nothing else, so the bridge emits
// exactly one mcheck program and that program must reproduce the deadlock.
package ab

import "sync"

// MuA is one of the two locks.
var MuA sync.Mutex

// MuB is the other.
var MuB sync.Mutex

// Forward takes A then B.
func Forward() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}

// Backward takes B then A.
func Backward() {
	MuB.Lock()
	MuA.Lock()
	MuA.Unlock()
	MuB.Unlock()
}
