// Package lockapi is a miniature stand-in for the repository's lockapi,
// just large enough for the analyzers to recognize (they match the
// package-path suffix "lockapi", the Cell type, and Proc methods whose
// final parameter is an Order). Keeping the fixture module self-contained
// makes the clof-lint e2e test independent of the real repository layout.
package lockapi

// Order is a memory-ordering constraint.
type Order int

// Ordering constants, weakest first.
const (
	Relaxed Order = iota
	Acquire
	Release
	AcqRel
	SeqCst
)

// Cell is a 64-bit atomic slot.
type Cell struct{ v uint64 }

// Proc is the per-thread handle lock code performs memory accesses through.
type Proc interface {
	Load(c *Cell, o Order) uint64
	Store(c *Cell, v uint64, o Order)
	CAS(c *Cell, old, new uint64, o Order) bool
	Add(c *Cell, delta uint64, o Order) uint64
	Swap(c *Cell, v uint64, o Order) uint64
	Fence(o Order)
	Spin()
	ID() int
}

// SeqReader is the optimistic (validated) read protocol; occdiscipline
// recognizes its methods by name and the Proc first parameter.
type SeqReader interface {
	ReadSeq(p Proc) uint64
	ReadValidate(p Proc, s uint64) bool
}
