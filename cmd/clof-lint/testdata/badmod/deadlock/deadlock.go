// Package deadlock seeds the whole-program analyzers: an ABBA cycle
// between two package-level locks (lockorder) and a guarded counter with a
// bare getter (heldescape).
package deadlock

import "sync"

// MuA is one of the two locks of the ABBA pair.
var MuA sync.Mutex

// MuB is the other.
var MuB sync.Mutex

// Forward takes A then B.
func Forward() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}

// Backward takes B then A: the inversion.
func Backward() {
	MuB.Lock()
	MuA.Lock()
	MuA.Unlock()
	MuB.Unlock()
}

// Gauge guards v with mu.
type Gauge struct {
	mu sync.Mutex
	v  int
}

// Set writes under the lock.
func (g *Gauge) Set(v int) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Peek reads bare: the escape.
func (g *Gauge) Peek() int {
	return g.v
}
