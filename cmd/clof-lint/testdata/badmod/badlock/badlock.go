// Package badlock is a deliberately defective lock that trips every
// clof-lint analyzer at least once; the e2e test asserts the driver exits
// nonzero on this module and names all four analyzers.
package badlock

import (
	"sync/atomic"

	"badmod/lockapi"
)

// Lock is a test-and-set lock with every discipline violation at once.
type Lock struct {
	word  lockapi.Cell
	stats uint64
}

// Acquire polls with a Relaxed entry guard (orderpolicy) in a busy loop
// with no backoff (spinhygiene), and never issues an Acquire barrier
// (orderpolicy's missing-barrier check fires on the declaration).
func (l *Lock) Acquire(p lockapi.Proc) {
	for p.Load(&l.word, lockapi.Relaxed) == 1 {
	}
	for !p.CAS(&l.word, 0, 1, lockapi.Relaxed) {
	}
	atomic.AddUint64(&l.stats, 1)
}

// Release unlocks with a Relaxed store: the missing release barrier.
func (l *Lock) Release(p lockapi.Proc) {
	p.Store(&l.word, 0, lockapi.Relaxed)
}

// Snapshot reads stats plainly while Acquire updates it atomically
// (atomicdiscipline).
func (l *Lock) Snapshot() uint64 { return l.stats }

// UnvalidatedRead takes an optimistic snapshot and returns the provisional
// value without ever calling ReadValidate (occdiscipline).
func UnvalidatedRead(p lockapi.Proc, sq lockapi.SeqReader, c *lockapi.Cell) uint64 {
	_ = sq.ReadSeq(p)
	return p.Load(c, lockapi.Relaxed)
}

// ByValue takes the lock by value (copylocks).
func ByValue(l Lock) uint64 { return l.Snapshot() }
