package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/analysis/atest"
	"github.com/clof-go/clof/internal/mcheck"
)

// TestRepoClean is the dogfood gate: the whole repository must lint clean
// (every intentional relaxation carries a //lint: waiver with a reason).
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", atest.RepoRoot(t, "")}, &out, &errb)
	if code != 0 {
		t.Fatalf("clof-lint on the repository: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clof-lint on the repository printed diagnostics:\n%s", out.String())
	}
}

// TestBadFixtureCaught runs the driver on the self-contained defective
// module under testdata and asserts a nonzero exit with every analyzer
// represented in the output.
func TestBadFixtureCaught(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "badmod")}, &out, &errb)
	if code != 1 {
		t.Fatalf("clof-lint on testdata/badmod: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	got := out.String()
	for _, a := range all {
		if !strings.Contains(got, "["+a.Name+"]") {
			t.Errorf("no [%s] finding on testdata/badmod; output:\n%s", a.Name, got)
		}
	}
	if !strings.Contains(got, filepath.Join("badlock", "badlock.go")) {
		t.Errorf("findings do not name badlock/badlock.go; output:\n%s", got)
	}
}

// TestSeededBarrierBugBothTools is the static/dynamic cross-check promised
// by DESIGN.md: the deliberately broken ticket lock in internal/mcheck
// (Release with a Relaxed grant store) is caught by clof-lint in audit mode
// — the waiver exists precisely because the defect is intentional — and by
// the model checker exploring the same lock under the weak memory model.
// One defect, both halves of the GenMC/VSync substitution.
func TestSeededBarrierBugBothTools(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", atest.RepoRoot(t, ""), "-nowaiver", "./internal/mcheck"}, &out, &errb)
	if code != 1 {
		t.Fatalf("clof-lint -nowaiver ./internal/mcheck: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "program.go") || !strings.Contains(got, "missing release barrier") {
		t.Errorf("audit mode did not flag the seeded missing-Release bug; output:\n%s", got)
	}

	if res := mcheck.Check(mcheck.BrokenTicketProgram(2, 2), mcheck.Config{Mode: mcheck.WMM}); res.OK {
		t.Errorf("mcheck accepted BrokenTicketProgram under WMM; the seeded bug must fail dynamically too")
	}
}

// TestJSONOutput pins the machine-readable format: -json on the defective
// module yields a parseable, position-sorted array naming the new
// whole-program analyzers.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "badmod"), "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("clof-lint -json on testdata/badmod: exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output is empty")
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", d)
		}
	}
	for _, want := range []string{"lockorder", "heldescape"} {
		if byAnalyzer[want] == 0 {
			t.Errorf("no %q findings in JSON output; got %v", want, byAnalyzer)
		}
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col <= b.Col
	}) {
		t.Errorf("JSON findings are not position-sorted:\n%s", out.String())
	}
}

// TestLitmusRespectsWaivers pins the emitter's waiver semantics: the
// repository's own lock-order cycles are all triaged (//lint:lockorder
// waivers with reasons), so a repo-wide -litmus run must skip them and
// write nothing — a waived cycle is a non-finding and deserves no witness.
func TestLitmusRespectsWaivers(t *testing.T) {
	root := atest.RepoRoot(t, "")
	dir, err := os.MkdirTemp(root, ".litmus-waived-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	var out, errb bytes.Buffer
	code := run([]string{"-dir", root, "-litmus", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("clof-lint -litmus on the repository: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Fatalf("repo-wide -litmus emitted %d programs (err=%v), want 0: waived cycles must be skipped\nstderr:\n%s",
			len(entries), err, errb.String())
	}
	got := errb.String()
	if !strings.Contains(got, "all closing edges waived") ||
		!strings.Contains(got, "no live lock-order cycles") {
		t.Fatalf("stderr does not narrate the skipped waived cycles:\n%s", got)
	}
}

// TestLitmusBridgeE2E is the full lint→mcheck round trip: -litmus on the
// minimal ABBA module must emit exactly one program, and `go run` of that
// program (from the repository root — the mcheck import is
// module-internal) must reproduce the deadlock and exit 0.
func TestLitmusBridgeE2E(t *testing.T) {
	root := atest.RepoRoot(t, "")
	// The emitted program imports this module's internal/mcheck, so it must
	// live (and run) under the repository root; a dot-prefixed directory is
	// invisible to ./... patterns, the go tool, and the loader.
	dir, err := os.MkdirTemp(root, ".litmus-e2e-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	var out, errb bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "abbamod"), "-litmus", dir}, &out, &errb)
	if code != 1 {
		t.Fatalf("clof-lint -litmus on testdata/abbamod: exit %d, want 1 (the cycle is a finding)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("emitted %d litmus programs, want 1; stderr:\n%s", len(entries), errb.String())
	}
	prog := filepath.Join(dir, entries[0].Name())

	cmd := exec.Command("go", "run", prog)
	cmd.Dir = root
	runOut, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s: %v\n%s", prog, err, runOut)
	}
	if !strings.Contains(string(runOut), "deadlock reproduced") {
		t.Fatalf("litmus program did not report the deadlock:\n%s", runOut)
	}
}
