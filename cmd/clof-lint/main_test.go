package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/clof-go/clof/internal/analysis/atest"
	"github.com/clof-go/clof/internal/mcheck"
)

// TestRepoClean is the dogfood gate: the whole repository must lint clean
// (every intentional relaxation carries a //lint: waiver with a reason).
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", atest.RepoRoot(t, "")}, &out, &errb)
	if code != 0 {
		t.Fatalf("clof-lint on the repository: exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clof-lint on the repository printed diagnostics:\n%s", out.String())
	}
}

// TestBadFixtureCaught runs the driver on the self-contained defective
// module under testdata and asserts a nonzero exit with every analyzer
// represented in the output.
func TestBadFixtureCaught(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", filepath.Join("testdata", "badmod")}, &out, &errb)
	if code != 1 {
		t.Fatalf("clof-lint on testdata/badmod: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	got := out.String()
	for _, a := range all {
		if !strings.Contains(got, "["+a.Name+"]") {
			t.Errorf("no [%s] finding on testdata/badmod; output:\n%s", a.Name, got)
		}
	}
	if !strings.Contains(got, filepath.Join("badlock", "badlock.go")) {
		t.Errorf("findings do not name badlock/badlock.go; output:\n%s", got)
	}
}

// TestSeededBarrierBugBothTools is the static/dynamic cross-check promised
// by DESIGN.md: the deliberately broken ticket lock in internal/mcheck
// (Release with a Relaxed grant store) is caught by clof-lint in audit mode
// — the waiver exists precisely because the defect is intentional — and by
// the model checker exploring the same lock under the weak memory model.
// One defect, both halves of the GenMC/VSync substitution.
func TestSeededBarrierBugBothTools(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-dir", atest.RepoRoot(t, ""), "-nowaiver", "./internal/mcheck"}, &out, &errb)
	if code != 1 {
		t.Fatalf("clof-lint -nowaiver ./internal/mcheck: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "program.go") || !strings.Contains(got, "missing release barrier") {
		t.Errorf("audit mode did not flag the seeded missing-Release bug; output:\n%s", got)
	}

	if res := mcheck.Check(mcheck.BrokenTicketProgram(2, 2), mcheck.Config{Mode: mcheck.WMM}); res.OK {
		t.Errorf("mcheck accepted BrokenTicketProgram under WMM; the seeded bug must fail dynamically too")
	}
}
