// clof-lint is the repository's static lock-discipline checker: the static
// half of the paper's GenMC/VSync substitution (internal/mcheck is the
// dynamic half). It loads packages from source — standard library only, no
// network — runs the internal/analysis suite, prints one diagnostic per
// line as
//
//	file:line:col: [analyzer] message
//
// and exits nonzero on findings, so scripts/check.sh can gate on it.
//
// Usage:
//
//	clof-lint [flags] [pattern ...]
//
//	patterns:  ./... (default), ./sub/..., ./sub/dir, or import paths
//	-dir:      module root (default: nearest go.mod above the cwd)
//	-nowaiver: audit mode — report //lint:-waived findings too
//	-json:     machine-readable output — a position-sorted JSON array of
//	           {file, line, col, analyzer, message} on stdout
//	-litmus:   directory to emit mcheck litmus programs into, one per
//	           lock-order cycle (see below); "" disables emission
//
// # The lint→mcheck litmus bridge
//
// Every lock-order cycle the lockorder analyzer reports is a *static*
// deadlock claim. With -litmus DIR, clof-lint also emits, per distinct
// cycle, a standalone mcheck program (mcheck.DeadlockProgram over the
// cycle's acquisition chains) into DIR. Each program is build-tagged
// ignore and must be `go run` from inside this repository (its mcheck
// import is module-internal); it exits 0 iff the model checker reproduces
// the deadlock, turning the static finding into a dynamic witness. Cycles
// whose every closing edge carries a //lint:lockorder waiver are triaged
// non-findings and are skipped (noted on stderr); -nowaiver emits them too.
//
// Exit codes: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/atomicdiscipline"
	"github.com/clof-go/clof/internal/analysis/copylocks"
	"github.com/clof-go/clof/internal/analysis/heldescape"
	"github.com/clof-go/clof/internal/analysis/loader"
	"github.com/clof-go/clof/internal/analysis/lockfacts"
	"github.com/clof-go/clof/internal/analysis/lockorder"
	"github.com/clof-go/clof/internal/analysis/occdiscipline"
	"github.com/clof-go/clof/internal/analysis/orderpolicy"
	"github.com/clof-go/clof/internal/analysis/spinhygiene"
)

// all is the clof-lint analyzer suite, in output-label order.
var all = []*analysis.Analyzer{
	atomicdiscipline.Analyzer,
	copylocks.Analyzer,
	heldescape.Analyzer,
	lockorder.Analyzer,
	occdiscipline.Analyzer,
	orderpolicy.Analyzer,
	spinhygiene.Analyzer,
}

// litmusModule is the module whose internal/mcheck the emitted litmus
// programs import: this one. Generated programs therefore run only from
// inside this repository's tree (Go's internal-package visibility rule),
// which is where the model checker lives anyway.
const litmusModule = "github.com/clof-go/clof"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clof-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "module root (default: nearest go.mod above the working directory)")
	nowaiver := fs.Bool("nowaiver", false, "audit mode: report waived findings too")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array instead of text")
	litmusDir := fs.String("litmus", "", "emit one mcheck litmus program per lock-order cycle into this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "clof-lint:", err)
			return 2
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "clof-lint:", err)
			return 2
		}
	}
	absRoot, err := filepath.Abs(root)
	if err == nil {
		root = absRoot
	}
	modPath, err := loader.MainModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "clof-lint:", err)
		return 2
	}

	ld := loader.New(loader.Module{Path: modPath, Dir: root})
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "clof-lint:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	if *nowaiver {
		diags = analysis.Audit(pkgs, all)
	} else {
		diags = analysis.Run(pkgs, all)
	}
	// Positions of the lockorder findings that survived waiver filtering
	// (all of them, in audit mode): the litmus emitter only writes witness
	// programs for cycles that are still live findings. Keyed by absolute
	// position, so capture before the paths are relativized below.
	liveCycles := map[string]bool{}
	for _, d := range diags {
		if d.Analyzer == lockorder.Analyzer.Name {
			liveCycles[d.Pos.String()] = true
		}
	}
	// Print paths relative to the module root: stable across machines and
	// clickable from the repository root.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "clof-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	if *litmusDir != "" {
		if err := emitLitmus(*litmusDir, pkgs, liveCycles, stderr); err != nil {
			fmt.Fprintln(stderr, "clof-lint:", err)
			return 2
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "clof-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// jsonDiag is the machine-readable finding shape (CI artifact format).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders diags (already position-sorted by the framework) as an
// indented JSON array; an empty run prints [].
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// emitLitmus writes one DeadlockProgram runner per distinct lock-order
// cycle of the loaded packages into dir. Cycles whose every closing edge
// was waived are triaged non-findings (their positions are absent from
// live) and are skipped with a note rather than given a witness program.
func emitLitmus(dir string, pkgs []*loader.Package, live map[string]bool, stderr io.Writer) error {
	world := lockfacts.Build(analysis.NewProgram(pkgs))
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	cycles := lockorder.Cycles(world)
	emitted := 0
	for _, c := range cycles {
		isLive := false
		for _, site := range c.Sites {
			if live[fset.Position(site).String()] {
				isLive = true
				break
			}
		}
		if !isLive {
			fmt.Fprintf(stderr, "clof-lint: skipping cycle %s -> %s (all closing edges waived)\n",
				strings.Join(c.Shorts, " -> "), c.Shorts[0])
			continue
		}
		if emitted == 0 {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		name, src := lockorder.EmitLitmus(c, litmusModule)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, src, 0o644); err != nil {
			return err
		}
		emitted++
		fmt.Fprintf(stderr, "clof-lint: wrote %s (cycle %s -> %s)\n",
			path, strings.Join(c.Shorts, " -> "), c.Shorts[0])
	}
	if emitted == 0 {
		fmt.Fprintln(stderr, "clof-lint: no live lock-order cycles; nothing to emit")
	}
	return nil
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
