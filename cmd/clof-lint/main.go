// clof-lint is the repository's static lock-discipline checker: the static
// half of the paper's GenMC/VSync substitution (internal/mcheck is the
// dynamic half). It loads packages from source — standard library only, no
// network — runs the internal/analysis suite, prints one diagnostic per
// line as
//
//	file:line:col: [analyzer] message
//
// and exits nonzero on findings, so scripts/check.sh can gate on it.
//
// Usage:
//
//	clof-lint [flags] [pattern ...]
//
//	patterns:  ./... (default), ./sub/..., ./sub/dir, or import paths
//	-dir:      module root (default: nearest go.mod above the cwd)
//	-nowaiver: audit mode — report //lint:-waived findings too
//
// Exit codes: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/clof-go/clof/internal/analysis"
	"github.com/clof-go/clof/internal/analysis/atomicdiscipline"
	"github.com/clof-go/clof/internal/analysis/copylocks"
	"github.com/clof-go/clof/internal/analysis/loader"
	"github.com/clof-go/clof/internal/analysis/orderpolicy"
	"github.com/clof-go/clof/internal/analysis/spinhygiene"
)

// all is the clof-lint analyzer suite, in output-label order.
var all = []*analysis.Analyzer{
	atomicdiscipline.Analyzer,
	copylocks.Analyzer,
	orderpolicy.Analyzer,
	spinhygiene.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clof-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "module root (default: nearest go.mod above the working directory)")
	nowaiver := fs.Bool("nowaiver", false, "audit mode: report waived findings too")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root := *dir
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "clof-lint:", err)
			return 2
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			fmt.Fprintln(stderr, "clof-lint:", err)
			return 2
		}
	}
	absRoot, err := filepath.Abs(root)
	if err == nil {
		root = absRoot
	}
	modPath, err := loader.MainModulePath(root)
	if err != nil {
		fmt.Fprintln(stderr, "clof-lint:", err)
		return 2
	}

	ld := loader.New(loader.Module{Path: modPath, Dir: root})
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "clof-lint:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	if *nowaiver {
		diags = analysis.Audit(pkgs, all)
	} else {
		diags = analysis.Run(pkgs, all)
	}
	for _, d := range diags {
		// Print paths relative to the module root: stable across machines
		// and clickable from the repository root.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "clof-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}
