// clof-obs runs one catalog lock under a contended workload with the
// observability layer (internal/obs) attached and prints the contention
// profile: the handover-distance table (how far each lock transfer traveled
// in the memory hierarchy), acquisition-latency and hold-time quantiles, and
// the per-CPU fairness summary. The per-level counts plus the self and
// first rows always sum to the total acquisitions — the collector counts
// every owner transition exactly once.
//
// Usage:
//
//	clof-obs [-lock NAME] [-threads N] [-platform x86|armv8] [-workload leveldb|kyoto]
//	         [-seed N] [-json] [-trace FILE] [-traffic]
//
// -trace writes the run as Chrome trace-event JSON (one track per virtual
// CPU, flow arrows for cross-CPU handovers), loadable in Perfetto or
// chrome://tracing. -traffic additionally aggregates per-cell memory-op
// counters from the simulator's trace stream (slower).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/clof-go/clof/internal/catalog"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/obs"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

func main() {
	lockName := flag.String("lock", "clof:tkt-tkt-tkt-tkt", "catalog lock to observe (see -lock help on error for the list)")
	threads := flag.Int("threads", 8, "contending threads (paper placement policy)")
	platform := flag.String("platform", "x86", "simulated platform: x86 or armv8")
	wl := flag.String("workload", "leveldb", "workload preset: leveldb or kyoto")
	seed := flag.Uint64("seed", 1, "simulation seed (equal seeds reproduce runs exactly)")
	jsonOut := flag.Bool("json", false, "print the full obs.Report as JSON instead of tables")
	tracePath := flag.String("trace", "", "write a Perfetto/Chrome trace JSON of the run to this file")
	traffic := flag.Bool("traffic", false, "also collect per-cell memory-operation traffic (slower)")
	flag.Parse()

	var mach *topo.Machine
	switch *platform {
	case "x86":
		mach = topo.X86Server()
	case "armv8":
		mach = topo.Armv8Server()
	default:
		fatal(fmt.Errorf("unknown platform %q (want x86 or armv8)", *platform))
	}

	entry, err := catalog.Lookup(*lockName)
	if err != nil {
		fatal(err)
	}

	var cfg workload.Config
	switch *wl {
	case "leveldb":
		cfg = workload.LevelDB(mach, *threads)
	case "kyoto":
		cfg = workload.Kyoto(mach, *threads)
	default:
		fatal(fmt.Errorf("unknown workload %q (want leveldb or kyoto)", *wl))
	}
	cfg.Seed = *seed

	col := obs.NewCollector(mach, obs.Options{Lock: *lockName, Spans: *tracePath != ""})
	cfg.Observer = col
	if *traffic {
		cfg.Trace = col.TraceFunc()
	}

	res, err := workload.Run(func() lockapi.Lock { return entry.New(mach) }, cfg)
	if err != nil {
		fatal(err)
	}
	rep := col.Report()

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteTraceJSON(f, col); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d handover arrows)\n",
			*tracePath, len(col.Spans()), len(col.Flows()))
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	printReport(rep, res)
}

// printReport renders the human-readable contention profile.
func printReport(rep obs.Report, res workload.Result) {
	fmt.Printf("lock=%s machine=%s  %.3f iter/µs over %dns virtual\n",
		rep.Lock, rep.Machine, res.ThroughputOpsPerUs(), res.Now)
	fmt.Printf("\nhandover distance (owner transitions by sharing level):\n")
	fmt.Printf("  %-16s %10s %8s\n", "distance", "count", "share")
	total := rep.Acquisitions
	row := func(name string, count uint64) {
		share := 0.0
		if total > 0 {
			share = 100 * float64(count) / float64(total)
		}
		fmt.Printf("  %-16s %10d %7.1f%%\n", name, count, share)
	}
	var first uint64
	if total > 0 {
		first = 1
	}
	row("first", first)
	row("self", rep.Handover.Self)
	for _, lc := range rep.Handover.Levels {
		row(lc.Level, lc.Count)
	}
	fmt.Printf("  %-16s %10d\n", "total", total)

	lat := rep.AcquireLatency
	hold := rep.Hold
	fmt.Printf("\nacquire latency  p50=%dns p90=%dns p99=%dns max=%dns mean=%.0fns\n",
		lat.P50, lat.P90, lat.P99, lat.Max, lat.Mean)
	fmt.Printf("hold time        p50=%dns p90=%dns p99=%dns max=%dns mean=%.0fns\n",
		hold.P50, hold.P90, hold.P99, hold.Max, hold.Mean)
	fmt.Printf("fairness         jain=%.3f max-starvation=%dns (cpu %d)\n",
		rep.Fairness.Jain, rep.Fairness.MaxStarvationNS, rep.Fairness.StarvedCPU)

	if len(rep.Traffic) > 0 {
		fmt.Printf("\ncache-line traffic (per cell):\n")
		fmt.Printf("  %-10s %10s %12s  %s\n", "cell", "ops", "cost", "by-op")
		for _, t := range rep.Traffic {
			ops := make([]string, 0, len(t.ByOp))
			for op := range t.ByOp {
				ops = append(ops, op)
			}
			sort.Strings(ops)
			var byOp strings.Builder
			for i, op := range ops {
				if i > 0 {
					byOp.WriteByte(' ')
				}
				fmt.Fprintf(&byOp, "%s=%d", op, t.ByOp[op])
			}
			fmt.Printf("  %-10s %10d %10dns  %s\n", t.Cell, t.Ops, t.CostNS, byOp.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clof-obs:", err)
	os.Exit(1)
}
