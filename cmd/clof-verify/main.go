// clof-verify runs the §4.2 verification suite with the built-in model
// checker: the base step (every basic lock), the CLoF induction step, and
// the negative results (inverted release order, missing release barrier) —
// printing the state counts and times the paper discusses in §3.3/§4.2.3.
//
// Usage:
//
//	clof-verify [-quick] [-scaling]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/clof-go/clof/internal/figures"
)

func main() {
	quick := flag.Bool("quick", false, "skip the slower configurations")
	scaling := flag.Bool("scaling", false, "also measure whole-lock checking growth with thread count")
	flag.Parse()

	o := figures.Options{Quick: *quick}
	fmt.Println("verification suite (SC = sequential consistency, WMM = weak store ordering):")
	failed := false
	for _, r := range figures.VerificationTable(o) {
		status := "verified"
		negative := len(r.Program) >= 8 && r.Program[:8] == "NEGATIVE"
		switch {
		case negative && !r.Result.OK:
			status = "violation found (expected): " + r.Result.Violation
		case negative && r.Result.OK:
			status = "FAILED: expected a violation, none found"
			failed = true
		case !r.Result.OK:
			status = "FAILED: " + r.Result.Violation
			failed = true
		}
		fmt.Printf("  %-34s %-4s states=%-8d execs=%-9d %10s  %s\n",
			r.Program, r.Mode, r.Result.States, r.Result.Executions,
			r.Elapsed.Round(1000000), status)
	}

	if *scaling {
		fmt.Println("\nwhole-lock checking growth (ticket lock, 1 acquisition per thread):")
		for _, row := range figures.VerificationScaling(o) {
			fmt.Printf("  %d threads: %8d states  %10s\n", row.Threads, row.States, row.Elapsed.Round(1000000))
		}
		fmt.Println("the CLoF induction step stays at 3 threads regardless of hierarchy depth (§4.2.3)")
	}
	if failed {
		os.Exit(1)
	}
}
