// clof-bench is the paper's scripted benchmark (§4.3, the last boxes of the
// Fig. 5 workflow): given a platform (or a hierarchy configuration file) it
// generates every composition of the basic locks, measures each across the
// contention grid on the simulated LevelDB workload, and reports the
// HC-best, LC-best and worst locks under both selection policies.
//
// The sweep runs on the experiment engine (internal/exp): every
// (composition, threads) point is an independent job on a bounded worker
// pool (-j), per-point seeds derive from stable hashing, and -runs > 1
// reports the median. Output is identical at any -j level. -out records
// every point as a results.json artifact.
//
// Usage:
//
//	clof-bench [-platform x86|armv8] [-hier FILE] [-levels 3|4] [-threads CSV]
//	           [-workload leveldb|kv] [-shards N] [-mix NAME]
//	           [-runs N] [-seed N] [-j N] [-out FILE] [-preselect K] [-v]
//
// -workload kv scores each composition as the per-shard lock of the sharded
// serving engine (internal/store's simulator model) instead of the global
// LevelDB lock: -shards shards, the -mix operation mix, Zipfian keys.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/clof-go/clof/internal/clof"
	"github.com/clof-go/clof/internal/exp"
	"github.com/clof-go/clof/internal/figures"
	"github.com/clof-go/clof/internal/lockapi"
	"github.com/clof-go/clof/internal/locks"
	"github.com/clof-go/clof/internal/prof"
	"github.com/clof-go/clof/internal/store"
	"github.com/clof-go/clof/internal/topo"
	"github.com/clof-go/clof/internal/workload"
)

func main() {
	platform := flag.String("platform", "armv8", "simulated platform: x86 or armv8")
	hierFile := flag.String("hier", "", "hierarchy configuration file (from clof-hier); overrides -platform/-levels")
	levels := flag.Int("levels", 4, "hierarchy depth when no -hier file is given (3 or 4)")
	threadsCSV := flag.String("threads", "", "comma-separated contention grid (default: the paper's grid)")
	workloadFlag := flag.String("workload", "leveldb", "measurement workload: leveldb (§4.3) or kv (sharded serving)")
	shards := flag.Int("shards", 8, "shard count for -workload kv")
	mixFlag := flag.String("mix", "read-mostly", "operation mix for -workload kv: read-mostly, write-heavy, rmw, scan")
	runs := flag.Int("runs", 1, "runs per measurement point (median)")
	seed := flag.Uint64("seed", 0, "base seed; per-point seeds derive from it by stable hashing")
	jobs := flag.Int("j", 0, "parallel grid points (0 = GOMAXPROCS); output is identical at any level")
	outFile := flag.String("out", "", "optional results.json artifact path")
	preselect := flag.Int("preselect", 0, "keep only the K best basic locks per level before the sweep (footnote 5; 0 = full N^M)")
	verbose := flag.Bool("v", false, "print every composition's scores")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var h *topo.Hierarchy
	switch {
	case *hierFile != "":
		b, err := os.ReadFile(*hierFile)
		if err != nil {
			fatal(err)
		}
		h = &topo.Hierarchy{}
		if err := h.UnmarshalText(b); err != nil {
			fatal(err)
		}
	case *platform == "x86" && *levels == 4:
		h = topo.X86Hierarchy4()
	case *platform == "x86":
		h = topo.X86Hierarchy3()
	case *levels == 4:
		h = topo.ArmHierarchy4()
	default:
		h = topo.ArmHierarchy3()
	}
	m := h.Machine

	grid := []int{1, 4, 8, 16, 24, 32, 48, 64, m.NumCPUs() - 1}
	if *threadsCSV != "" {
		grid = nil
		for _, s := range strings.Split(*threadsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			grid = append(grid, n)
		}
	}

	basics := locks.BasicLocks(m.Arch)
	var comps []clof.Composition
	if *preselect > 0 {
		fmt.Fprintf(os.Stderr, "pre-selection: scoring basic locks per level (footnote 5)\n")
		scorer := figures.CohortScorer(m, figures.Options{Runs: *runs})
		comps = clof.Preselect(basics, h, *preselect, scorer)
	} else {
		comps = clof.Generate(basics, h.Depth())
	}
	fmt.Printf("scripted benchmark: %s, %d compositions, grid %v\n", h, len(comps), grid)

	// measure runs one (composition, threads) point under the selected
	// workload and converts the result to an engine sample.
	var measure func(comp clof.Composition, n int, seed uint64) exp.Sample
	notes := "scripted benchmark (§4.3)"
	switch *workloadFlag {
	case "leveldb":
		measure = func(comp clof.Composition, n int, seed uint64) exp.Sample {
			cfg := workload.LevelDB(m, n)
			cfg.Seed = seed
			res, err := workload.Run(func() lockapi.Lock { return clof.Must(h, comp) }, cfg)
			if err != nil {
				return exp.Sample{Err: err.Error()}
			}
			return exp.Sample{Throughput: res.ThroughputOpsPerUs(), Jain: res.Jain(), Total: res.Total}
		}
	case "kv":
		var mix store.Mix
		for _, mx := range store.Mixes() {
			if mx.Name == *mixFlag {
				mix = mx
			}
		}
		if mix.Name == "" {
			fatal(fmt.Errorf("unknown mix %q (known: read-mostly, write-heavy, rmw, scan)", *mixFlag))
		}
		notes = fmt.Sprintf("scripted benchmark, sharded serving: %d shards, mix %s, zipfian keys", *shards, mix.Name)
		measure = func(comp clof.Composition, n int, seed uint64) exp.Sample {
			res, err := workload.RunKV(workload.KVConfig{
				Machine: m, Threads: n, Shards: *shards,
				NewShardLock: func() lockapi.Lock { return clof.Must(h, comp) },
				Horizon:      300_000, // the scripted benchmark's horizon
				Mix:          mix, Dist: store.DistZipfian,
				Seed: seed,
			})
			if err != nil {
				return exp.Sample{Err: err.Error()}
			}
			return exp.Sample{Throughput: res.ThroughputOpsPerUs(), Jain: res.Jain(), Total: res.Total}
		}
	default:
		fatal(fmt.Errorf("unknown workload %q (known: leveldb, kv)", *workloadFlag))
	}

	spec := exp.Spec{
		Name:      "bench",
		Platform:  m.Arch.String(),
		Hierarchy: h.String(),
		Workload:  *workloadFlag,
		Threads:   grid,
		Runs:      *runs,
		Seed:      *seed,
		Notes:     notes,
	}
	for _, comp := range comps {
		spec.Locks = append(spec.Locks, comp.String())
	}

	var points []exp.Point
	for _, comp := range comps {
		for _, n := range grid {
			comp, n := comp, n
			points = append(points, exp.Point{
				Key: fmt.Sprintf("comp=%s/threads=%d", comp, n),
				Run: func(s uint64) exp.Sample { return measure(comp, n, s) },
			})
		}
	}

	var manifest *exp.Manifest
	if *outFile != "" {
		manifest = exp.NewManifest(*outFile)
	}
	// One line per 64 completed points, mirroring the old cadence. The
	// runner serializes Progress calls, so the counter needs no lock.
	done := 0
	runner := &exp.Runner{
		Jobs:     *jobs,
		Manifest: manifest,
		Progress: func(string) {
			done++
			if done%64 == 0 {
				fmt.Fprintf(os.Stderr, "  %d/%d measurements\n", done, len(points))
			}
		},
	}
	results := runner.Run(spec, points)

	for _, r := range results {
		for _, e := range r.Errors {
			fatal(fmt.Errorf("%s: %s", r.Key, e))
		}
	}

	ms := make([]clof.Measurement, len(comps))
	i := 0
	for ci, comp := range comps {
		ms[ci] = clof.Measurement{Comp: comp}
		for _, n := range grid {
			ms[ci].Points = append(ms[ci].Points, clof.Point{Threads: n, Throughput: results[i].Throughput()})
			i++
		}
	}
	sel, err := clof.Select(ms)
	if err != nil {
		fatal(err)
	}

	if *verbose {
		fmt.Println("\nall compositions (HC-ranked):")
		for _, mm := range sel.All {
			fmt.Printf("  %-20s HC=%.3f LC=%.3f\n", mm.Comp, mm.Score(clof.HighContention), mm.Score(clof.LowContention))
		}
	}
	fmt.Printf("\nHC-best: %-20s (weighted score %.3f)\n", sel.HCBest.Comp, sel.HCBest.Score(clof.HighContention))
	fmt.Printf("LC-best: %-20s (weighted score %.3f)\n", sel.LCBest.Comp, sel.LCBest.Score(clof.LowContention))
	fmt.Printf("worst:   %-20s\n", sel.Worst.Comp)
	fmt.Println("\nthroughput (iter/us) of the selected locks:")
	fmt.Printf("%-10s", "threads")
	for _, n := range grid {
		fmt.Printf("%8d", n)
	}
	fmt.Println()
	for _, e := range []struct {
		name string
		m    clof.Measurement
	}{{"HC-best", sel.HCBest}, {"LC-best", sel.LCBest}, {"worst", sel.Worst}} {
		fmt.Printf("%-10s", e.name)
		for _, pt := range e.m.Points {
			fmt.Printf("%8.3f", pt.Throughput)
		}
		fmt.Println()
	}
	if manifest != nil {
		if err := manifest.Save(); err != nil {
			fatal(err)
		}
		sum := manifest.Summary()
		fmt.Printf("\nwrote %s (%d points, %.0f ms measuring, %.0f iters/sec)\n",
			manifest.Path(), sum.Points, sum.WallMSTotal, sum.ItersPerSec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clof-bench:", err)
	os.Exit(1)
}
