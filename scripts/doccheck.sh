#!/bin/sh
# doccheck enforces the repository's godoc discipline with nothing beyond
# POSIX sh + awk + grep (no go/ast tooling, so CI needs only the toolchain
# it already has). Two rules, both on non-test Go files outside testdata:
#
#   1. every non-main package carries a package comment
#      ("// Package <name> ..."), and
#   2. every exported top-level declaration — func, type, var, const at
#      column 0, and exported methods on exported receivers — is
#      immediately preceded by a comment line. Methods on unexported
#      receivers are exempt: godoc does not render them.
#   3. no orphan docs: every markdown file under docs/ is linked (by file
#      name) from README.md or from another file under docs/ — a doc
#      nobody can reach from the front page is a doc nobody reads.
#
# Column-0 matching is a deliberate approximation: declarations inside
# var/const/type blocks are indented and therefore exempt, which matches
# gofmt output and keeps the check cheap and false-positive-free.
set -eu
cd "$(dirname "$0")/.."

status=0

gofiles() {
    find . -name '*.go' ! -name '*_test.go' ! -path '*/testdata/*' ! -path './.git/*' | sort
}

# Rule 1: package comments.
for dir in $(gofiles | xargs -n1 dirname | sort -u); do
    first=$(ls "$dir"/*.go | grep -v '_test\.go$' | head -1)
    pkg=$(awk '/^package /{print $2; exit}' "$first")
    [ "$pkg" = "main" ] && continue
    found=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -q "^// Package $pkg " "$f"; then found=1; break; fi
    done
    if [ "$found" = 0 ]; then
        echo "doccheck: $dir: package $pkg has no '// Package $pkg ...' comment"
        status=1
    fi
done

# Rule 2: doc comments on exported top-level declarations.
for f in $(gofiles); do
    awk -v file="${f#./}" '
        /^func \(([a-zA-Z_][A-Za-z0-9_]* +)?\*?[A-Z][^)]*\) [A-Z]/ || /^func [A-Z]/ ||
        /^type [A-Z]/ || /^var [A-Z]/ || /^const [A-Z]/ {
            if (prev !~ /^\/\// && prev !~ /\*\/[ \t]*$/) {
                printf "doccheck: %s:%d: exported declaration lacks a doc comment: %s\n", file, NR, $0
                bad = 1
            }
        }
        { prev = $0 }
        END { exit bad }
    ' "$f" || status=1
done

# Rule 3: no orphan docs.
if [ -d docs ]; then
    for f in docs/*.md; do
        [ -e "$f" ] || continue
        base=$(basename "$f")
        linked=0
        if grep -q "$base" README.md; then linked=1; fi
        for other in docs/*.md; do
            [ "$other" = "$f" ] && continue
            if grep -q "$base" "$other"; then linked=1; break; fi
        done
        if [ "$linked" = 0 ]; then
            echo "doccheck: $f: orphan doc — link it from README.md or another docs/ file"
            status=1
        fi
    done
fi

if [ "$status" != 0 ]; then
    echo "doccheck: FAIL — every exported declaration needs a doc comment" >&2
    exit 1
fi
echo "doccheck: OK"
