#!/usr/bin/env bash
# check.sh — the repository's full verification gate:
#   1. go build ./...
#   2. go vet ./...
#   3. clof-lint ./...          (static lock-discipline suite: atomic
#      access, memory-order policy, copylocks, spin hygiene, plus the
#      whole-program lock-graph analyzers — lockorder's cross-package
#      deadlock/level-inversion detection and heldescape's
#      guarded-write/bare-read escapes; a JSON report is written for
#      the CI artifact)
#   4. make doccheck            (godoc discipline: package comments +
#      doc comments on exported declarations; scripts/doccheck.sh)
#   5. go test ./...            (tier-1, includes the model-checker suites)
#   6. go test -race            on every package except mcheck
#      (mcheck is excluded from the race pass: its replay engine is
#      single-goroutine, so -race only multiplies its minutes-long
#      exhaustive searches without checking anything new)
#   7. clof-chaos smoke run, twice, byte-compared — the determinism
#      guarantee the robustness report rests on
#   8. make figures-quick       (experiment engine smoke: a small figure
#      set on the parallel runner, CSVs + results.json into figures-out/)
#   9. collapse smoke           (concurrency-restriction experiment at
#      reduced scale, byte-compared across -j levels, then regenerated
#      into figures-out/collapse-quick/ for the CI artifact)
#  10. kv smoke                 (sharded-serving sweep at reduced scale,
#      byte-compared across -j levels, then regenerated into
#      figures-out/kv-quick/ for the CI artifact)
#  11. occ smoke                (optimistic-read panels — the two
#      read-mostly sweeps the seq: acceptance criterion quantifies over —
#      byte-compared across -j levels, then regenerated into
#      figures-out/occ-quick/ for the CI artifact)
#  12. scale smoke              (deep-topology bigmachine sweep — the
#      256/512/1024-vCPU catalog panels — byte-compared across -j levels,
#      then regenerated into figures-out/scale-quick/ for the CI artifact)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== clof-lint ./..."
go run ./cmd/clof-lint ./...

echo "== clof-lint -json report (CI artifact)"
# The machine-readable report is regenerated even on a clean run (it is
# "[]" then); CI uploads figures-out/lint-report.json alongside the figure
# artifacts. Findings already failed the gate above, so -json here is
# informational and must not trip set -e on a racing edit.
mkdir -p figures-out
go run ./cmd/clof-lint -json ./... > figures-out/lint-report.json || true

echo "== doccheck"
make doccheck

echo "== go test ./..."
go test ./...

echo "== go test -race (all packages except mcheck)"
# Derived, not hand-listed, so new packages are raced by default. mcheck is
# excluded: its replay engine is single-goroutine, so -race finds nothing
# there and multiplies its exhaustive-search runtime.
go test -race $(go list ./... | grep -v '/internal/mcheck$')

echo "== clof-chaos smoke (determinism)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
smoke=(-locks "mcs,hbo,clof:tkt-tkt-tkt-tkt" -plans "none,holder-preempt,abandon" -threads 8)
go run ./cmd/clof-chaos "${smoke[@]}" -out "$tmp/a.csv"
go run ./cmd/clof-chaos "${smoke[@]}" -out "$tmp/b.csv"
cmp "$tmp/a.csv" "$tmp/b.csv"
echo "chaos smoke: byte-identical across reruns"

echo "== figures-quick (experiment engine smoke)"
make figures-quick

echo "== collapse-quick (concurrency-restriction smoke + determinism)"
# The collapse curves must be byte-identical at any worker-pool width —
# same guarantee as the chaos CSV, checked the same way.
go run ./cmd/clof-figures -exp collapse -quick -j 1 -q -out "$tmp/collapse-j1"
go run ./cmd/clof-figures -exp collapse -quick -j 4 -q -out "$tmp/collapse-j4"
cmp "$tmp/collapse-j1/collapse-none.csv" "$tmp/collapse-j4/collapse-none.csv"
cmp "$tmp/collapse-j1/collapse-oversubscribed.csv" "$tmp/collapse-j4/collapse-oversubscribed.csv"
echo "collapse smoke: byte-identical across -j levels"
make collapse-quick

echo "== kv-quick (sharded-serving smoke + determinism)"
# The serving curves carry per-shard obs blocks in their manifest; the CSVs
# must still be byte-identical at any worker-pool width.
go run ./cmd/clof-figures -exp kv -quick -j 1 -q -out "$tmp/kv-j1"
go run ./cmd/clof-figures -exp kv -quick -j 4 -q -out "$tmp/kv-j4"
for mix in read-mostly write-heavy rmw scan read-mostly-armv8; do
  cmp "$tmp/kv-j1/kv-$mix.csv" "$tmp/kv-j4/kv-$mix.csv"
done
echo "kv smoke: byte-identical across -j levels"
make kv-quick

echo "== occ-quick (optimistic-read smoke + determinism)"
# The seq: rows ride the kv sweep above; the focused occ alias must produce
# the same read-mostly curves byte-for-byte at any worker-pool width.
go run ./cmd/clof-figures -exp occ -quick -j 1 -q -out "$tmp/occ-j1"
go run ./cmd/clof-figures -exp occ -quick -j 4 -q -out "$tmp/occ-j4"
for f in kv-read-mostly kv-read-mostly-armv8; do
  cmp "$tmp/occ-j1/$f.csv" "$tmp/occ-j4/$f.csv"
done
echo "occ smoke: byte-identical across -j levels"
make occ-quick

echo "== scale-quick (deep-topology smoke + determinism)"
# The 256/512/1024-vCPU bigmachine panels must be byte-identical at any
# worker-pool width — the golden-determinism guarantee extends to the deep
# topologies.
go run ./cmd/clof-figures -exp bigmachine -quick -j 1 -q -out "$tmp/scale-j1"
go run ./cmd/clof-figures -exp bigmachine -quick -j 4 -q -out "$tmp/scale-j4"
for n in 256 512 1024; do
  cmp "$tmp/scale-j1/bigmachine-$n.csv" "$tmp/scale-j4/bigmachine-$n.csv"
done
echo "scale smoke: byte-identical across -j levels"
make scale-quick

echo "check: OK"
